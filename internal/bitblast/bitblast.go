// Package bitblast evaluates an extracted circuit and its originating CNF
// on packed uint64 lanes: each word carries 64 candidate assignments (one
// per bit), so one gate evaluation or clause check covers 64 batch rows.
// The gradient-descent sampler hardens its learned soft inputs directly
// into packed columns and verifies a whole batch with word-level sweeps
// instead of per-row Circuit.Eval + Formula.Sat — the per-row path remains
// as the differential-testing oracle. See DESIGN.md ("Bit-parallel
// verification").
package bitblast

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/cnf"
)

// blit is a compiled CNF literal: a circuit node index and a complement
// flag. Literals of variables with no circuit node evaluate to constant
// false (positive polarity) or true (negative polarity) and are resolved
// at compile time, mirroring extract.Result.AssignmentFromInputs, which
// defaults nodeless variables to false.
type blit struct {
	node int32
	neg  bool
}

// Program is a compiled bit-parallel verifier for one (circuit, CNF) pair.
// It is immutable after New; obtain per-goroutine scratch with NewEval.
type Program struct {
	circ *circuit.Circuit
	// clauses lists the clause plan after constant resolution: clauses
	// made unconditionally true by a nodeless negative literal are
	// dropped, constant-false literals are removed.
	clauses [][]blit
	// unsat is set when some clause lost every literal to constant-false
	// resolution: no assignment reachable through the circuit satisfies
	// the CNF, so Verify reports zero valid lanes.
	unsat bool
}

// New compiles a verifier. nodeOf maps CNF variables to circuit nodes (the
// extract.Result.NodeOf table); variables absent from it are treated as
// constant false, matching AssignmentFromInputs.
func New(c *circuit.Circuit, nodeOf map[int]circuit.NodeID, f *cnf.Formula) *Program {
	p := &Program{circ: c}
	for _, cl := range f.Clauses {
		compiled := make([]blit, 0, len(cl))
		sat := false
		for _, l := range cl {
			id, ok := nodeOf[l.Var()]
			if !ok {
				if !l.Positive() {
					sat = true // ¬v with v defaulted false: always true
					break
				}
				continue // v defaulted false: drop the literal
			}
			compiled = append(compiled, blit{node: int32(id), neg: !l.Positive()})
		}
		if sat {
			continue
		}
		if len(compiled) == 0 {
			p.unsat = true
			p.clauses = nil
			return p
		}
		p.clauses = append(p.clauses, compiled)
	}
	return p
}

// NumClauses returns the number of clauses retained after constant
// resolution.
func (p *Program) NumClauses() int { return len(p.clauses) }

// sweepWidth is how many packed words one pass over the node/clause tape
// evaluates: 4 words = 256 candidate lanes per pass. The unrolled kernels
// keep 4 independent accumulators per gate, so the per-node switch
// dispatch, fanin-slice iteration and clause-literal walk are amortized
// 4× and the accumulators schedule as independent instruction streams.
const sweepWidth = 4

// Eval is reusable per-goroutine scratch for a Program.
type Eval struct {
	prog *Program
	vals []uint64 // sweepWidth packed words per circuit node, node-major
}

// NewEval allocates scratch for word-level sweeps over p.
func (p *Program) NewEval() *Eval {
	return &Eval{prog: p, vals: make([]uint64, len(p.circ.Nodes)*sweepWidth)}
}

// ScratchBytes returns the resident size of one Eval's scratch — the
// per-worker verifier cost a session's memory model charges for each
// device worker.
func (p *Program) ScratchBytes() int64 {
	return int64(len(p.circ.Nodes)) * sweepWidth * 8
}

// Verify evaluates the circuit on packed input columns and checks every
// CNF clause, writing one validity mask word per input word: bit r of
// valid[w] is set iff the full assignment induced by lane r of word w
// satisfies the formula. cols holds one packed column per primary input
// (in circuit input order), each at least words long; valid must be at
// least words long. Lanes beyond the caller's batch carry whatever bits
// the caller packed there — mask them off in valid before use.
//
// The sweep is word-major: all nodes and clauses are evaluated for one
// word before moving to the next, so the working set is one uint64 per
// node regardless of batch size. Verify performs no allocations.
func (e *Eval) Verify(cols [][]uint64, words int, valid []uint64) {
	p := e.prog
	if len(cols) != len(p.circ.Inputs) {
		panic(fmt.Sprintf("bitblast: got %d input columns for %d inputs", len(cols), len(p.circ.Inputs)))
	}
	if p.unsat {
		for w := 0; w < words; w++ {
			valid[w] = 0
		}
		return
	}
	var ws [sweepWidth]int
	for w := 0; w < words; w += sweepWidth {
		k := words - w
		if k > sweepWidth {
			k = sweepWidth
		}
		for j := 0; j < k; j++ {
			ws[j] = w + j
		}
		e.flushGroup(cols, &ws, k, valid, nil, nil)
	}
}

// VerifyMasked is the incremental form of Verify used by the continuous-
// batch scheduler: it re-runs the node evaluation and clause sweep only for
// words w with mask[w] != 0 (words holding at least one lane whose packed
// bits changed since the caller's last sweep) and leaves valid[w] untouched
// for clean words. Because a lane's validity is a pure function of its
// packed bits, a caller that keeps valid[] across sweeps and marks every
// changed lane's word dirty reads exact results at a fraction of the full
// sweep's cost. Like Verify, it performs no allocations.
func (e *Eval) VerifyMasked(cols [][]uint64, words int, mask, valid []uint64) {
	e.VerifyMaskedRange(cols, 0, words, mask, valid)
}

// VerifyMaskedRange is VerifyMasked restricted to words [lo, hi) — the
// per-tile form the parallel scheduler uses: each worker sweeps only the
// word range its tiles own, with its own Eval scratch. Dirty words are
// gathered into groups of sweepWidth so a sparse mask still fills wide
// passes. No allocations.
func (e *Eval) VerifyMaskedRange(cols [][]uint64, lo, hi int, mask, valid []uint64) {
	p := e.prog
	if len(cols) != len(p.circ.Inputs) {
		panic(fmt.Sprintf("bitblast: got %d input columns for %d inputs", len(cols), len(p.circ.Inputs)))
	}
	if p.unsat {
		for w := lo; w < hi; w++ {
			if mask[w] != 0 {
				valid[w] = 0
			}
		}
		return
	}
	var ws [sweepWidth]int
	k := 0
	for w := lo; w < hi; w++ {
		if mask[w] == 0 {
			continue
		}
		ws[k] = w
		k++
		if k == sweepWidth {
			e.flushGroup(cols, &ws, sweepWidth, valid, nil, nil)
			k = 0
		}
	}
	if k > 0 {
		e.flushGroup(cols, &ws, k, valid, nil, nil)
	}
}

// VerifyProject is Verify plus projected-signature extraction in the same
// word sweep: alongside valid, it fills one packed projection column per
// plan entry — bit r of proj[k][w] is lane r's value for the k-th
// projection variable. plan maps projection variables to circuit nodes
// (extract.Result.ProjectionNodes); a negative entry is a nodeless
// variable, constant false by the AssignmentFromInputs convention. Each
// proj[k] must be at least words long. No allocations.
func (e *Eval) VerifyProject(cols [][]uint64, words int, valid []uint64, plan []int32, proj [][]uint64) {
	p := e.prog
	if len(cols) != len(p.circ.Inputs) {
		panic(fmt.Sprintf("bitblast: got %d input columns for %d inputs", len(cols), len(p.circ.Inputs)))
	}
	if p.unsat {
		for w := 0; w < words; w++ {
			valid[w] = 0
			for k := range plan {
				proj[k][w] = 0
			}
		}
		return
	}
	var ws [sweepWidth]int
	for w := 0; w < words; w += sweepWidth {
		k := words - w
		if k > sweepWidth {
			k = sweepWidth
		}
		for j := 0; j < k; j++ {
			ws[j] = w + j
		}
		e.flushGroup(cols, &ws, k, valid, plan, proj)
	}
}

// VerifyMaskedProject is the incremental form of VerifyProject: words with
// mask[w] == 0 keep both their cached validity and their cached projection
// columns (a lane's projected signature, like its validity, is a pure
// function of its packed bits). The continuous-batch scheduler's projected
// dedup relies on this caching contract. No allocations.
func (e *Eval) VerifyMaskedProject(cols [][]uint64, words int, mask, valid []uint64, plan []int32, proj [][]uint64) {
	e.VerifyMaskedProjectRange(cols, 0, words, mask, valid, plan, proj)
}

// VerifyMaskedProjectRange is VerifyMaskedProject restricted to words
// [lo, hi) — the per-tile form for parallel projected sessions. No
// allocations.
func (e *Eval) VerifyMaskedProjectRange(cols [][]uint64, lo, hi int, mask, valid []uint64, plan []int32, proj [][]uint64) {
	p := e.prog
	if len(cols) != len(p.circ.Inputs) {
		panic(fmt.Sprintf("bitblast: got %d input columns for %d inputs", len(cols), len(p.circ.Inputs)))
	}
	if p.unsat {
		for w := lo; w < hi; w++ {
			if mask[w] != 0 {
				valid[w] = 0
				for k := range plan {
					proj[k][w] = 0
				}
			}
		}
		return
	}
	var ws [sweepWidth]int
	k := 0
	for w := lo; w < hi; w++ {
		if mask[w] == 0 {
			continue
		}
		ws[k] = w
		k++
		if k == sweepWidth {
			e.flushGroup(cols, &ws, sweepWidth, valid, plan, proj)
			k = 0
		}
	}
	if k > 0 {
		e.flushGroup(cols, &ws, k, valid, plan, proj)
	}
}

// flushGroup runs one wide pass over the k (1..sweepWidth) gathered words
// ws[0..k-1]: node evaluation, the clause sweep, the validity store, and —
// when plan is non-nil — the projected-signature store.
func (e *Eval) flushGroup(cols [][]uint64, ws *[sweepWidth]int, k int, valid []uint64, plan []int32, proj [][]uint64) {
	e.evalWords(cols, ws, k)
	m0, m1, m2, m3 := e.checkWords()
	switch k {
	case 4:
		valid[ws[3]] = m3
		fallthrough
	case 3:
		valid[ws[2]] = m2
		fallthrough
	case 2:
		valid[ws[1]] = m1
		fallthrough
	default:
		valid[ws[0]] = m0
	}
	if plan != nil {
		e.projectWords(plan, proj, ws, k)
	}
}

// projectWords gathers the packed projected signatures of the k gathered
// words from the node values computed by evalWords.
func (e *Eval) projectWords(plan []int32, proj [][]uint64, ws *[sweepWidth]int, k int) {
	for pk, nd := range plan {
		col := proj[pk]
		if nd >= 0 {
			b := int(nd) * sweepWidth
			for j := 0; j < k; j++ {
				col[ws[j]] = e.vals[b+j]
			}
		} else {
			for j := 0; j < k; j++ {
				col[ws[j]] = 0
			}
		}
	}
}

// OutputsMask evaluates the circuit on packed input columns and writes one
// mask word per input word whose bit r is set iff lane r drives every
// circuit output to its target — the packed analogue of
// Circuit.OutputsSatisfied, used by tests and tools that check the
// extracted function rather than the originating CNF.
func (e *Eval) OutputsMask(cols [][]uint64, words int, ok []uint64) {
	p := e.prog
	var ws [sweepWidth]int
	for w := 0; w < words; w += sweepWidth {
		k := words - w
		if k > sweepWidth {
			k = sweepWidth
		}
		for j := 0; j < k; j++ {
			ws[j] = w + j
		}
		e.evalWords(cols, &ws, k)
		for j := 0; j < k; j++ {
			m := ^uint64(0)
			for _, o := range p.circ.Outputs {
				v := e.vals[int(o.Node)*sweepWidth+j]
				if !o.Target {
					v = ^v
				}
				m &= v
			}
			ok[w+j] = m
		}
	}
}

// evalWords computes every node's packed values for the k (1..sweepWidth)
// gathered input words ws[0..k-1] in one unrolled pass. Short groups pad by
// repeating the last real word, so the body is branch-free over lanes: the
// duplicate results are recomputed and simply never stored.
func (e *Eval) evalWords(cols [][]uint64, ws *[sweepWidth]int, k int) {
	c := e.prog.circ
	vals := e.vals
	w0 := ws[0]
	w1, w2, w3 := w0, w0, w0
	if k > 1 {
		w1 = ws[1]
		w2, w3 = w1, w1
	}
	if k > 2 {
		w2 = ws[2]
		w3 = w2
	}
	if k > 3 {
		w3 = ws[3]
	}
	for i, id := range c.Inputs {
		col := cols[i]
		b := int(id) * sweepWidth
		vals[b] = col[w0]
		vals[b+1] = col[w1]
		vals[b+2] = col[w2]
		vals[b+3] = col[w3]
	}
	for id, nd := range c.Nodes {
		b := id * sweepWidth
		switch nd.Type {
		case circuit.Input:
			// loaded above
		case circuit.Const:
			v := uint64(0)
			if nd.Val {
				v = ^uint64(0)
			}
			vals[b] = v
			vals[b+1] = v
			vals[b+2] = v
			vals[b+3] = v
		case circuit.Buf:
			f := int(nd.Fanin[0]) * sweepWidth
			vals[b] = vals[f]
			vals[b+1] = vals[f+1]
			vals[b+2] = vals[f+2]
			vals[b+3] = vals[f+3]
		case circuit.Not:
			f := int(nd.Fanin[0]) * sweepWidth
			vals[b] = ^vals[f]
			vals[b+1] = ^vals[f+1]
			vals[b+2] = ^vals[f+2]
			vals[b+3] = ^vals[f+3]
		case circuit.And, circuit.Nand:
			v0, v1, v2, v3 := ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)
			for _, f := range nd.Fanin {
				fb := int(f) * sweepWidth
				v0 &= vals[fb]
				v1 &= vals[fb+1]
				v2 &= vals[fb+2]
				v3 &= vals[fb+3]
			}
			if nd.Type == circuit.Nand {
				v0, v1, v2, v3 = ^v0, ^v1, ^v2, ^v3
			}
			vals[b] = v0
			vals[b+1] = v1
			vals[b+2] = v2
			vals[b+3] = v3
		case circuit.Or, circuit.Nor:
			v0, v1, v2, v3 := uint64(0), uint64(0), uint64(0), uint64(0)
			for _, f := range nd.Fanin {
				fb := int(f) * sweepWidth
				v0 |= vals[fb]
				v1 |= vals[fb+1]
				v2 |= vals[fb+2]
				v3 |= vals[fb+3]
			}
			if nd.Type == circuit.Nor {
				v0, v1, v2, v3 = ^v0, ^v1, ^v2, ^v3
			}
			vals[b] = v0
			vals[b+1] = v1
			vals[b+2] = v2
			vals[b+3] = v3
		case circuit.Xor, circuit.Xnor:
			v0, v1, v2, v3 := uint64(0), uint64(0), uint64(0), uint64(0)
			for _, f := range nd.Fanin {
				fb := int(f) * sweepWidth
				v0 ^= vals[fb]
				v1 ^= vals[fb+1]
				v2 ^= vals[fb+2]
				v3 ^= vals[fb+3]
			}
			if nd.Type == circuit.Xnor {
				v0, v1, v2, v3 = ^v0, ^v1, ^v2, ^v3
			}
			vals[b] = v0
			vals[b+1] = v1
			vals[b+2] = v2
			vals[b+3] = v3
		}
	}
}

// checkWords ANDs all clause masks over the current group's node values,
// returning one satisfaction mask per gathered word. The early exit fires
// only when all four lanes are dead.
func (e *Eval) checkWords() (uint64, uint64, uint64, uint64) {
	s0, s1, s2, s3 := ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)
	vals := e.vals
	for _, cl := range e.prog.clauses {
		c0, c1, c2, c3 := uint64(0), uint64(0), uint64(0), uint64(0)
		for _, l := range cl {
			b := int(l.node) * sweepWidth
			v0, v1, v2, v3 := vals[b], vals[b+1], vals[b+2], vals[b+3]
			if l.neg {
				v0, v1, v2, v3 = ^v0, ^v1, ^v2, ^v3
			}
			c0 |= v0
			c1 |= v1
			c2 |= v2
			c3 |= v3
		}
		s0 &= c0
		s1 &= c1
		s2 &= c2
		s3 &= c3
		if s0|s1|s2|s3 == 0 {
			return 0, 0, 0, 0
		}
	}
	return s0, s1, s2, s3
}

// Hash64 returns a SplitMix64-based hash of a packed bit vector — the
// shared dedup key for solution pools (core sampler and baselines).
// Callers must resolve 64-bit collisions with an exact comparison.
func Hash64(words []uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, x := range words {
		h ^= x
		h ^= h >> 30
		h *= 0xBF58476D1CE4E5B9
		h ^= h >> 27
		h *= 0x94D049BB133111EB
		h ^= h >> 31
	}
	return h
}

// PackColumn sets bit r of col[r/64] to src[r] for r in [0, n), zeroing
// the words it touches first. It is a convenience for callers packing
// row-major bool data one column at a time.
func PackColumn(col []uint64, src []bool) {
	words := (len(src) + 63) / 64
	for w := 0; w < words; w++ {
		col[w] = 0
	}
	for r, b := range src {
		if b {
			col[r>>6] |= 1 << (uint(r) & 63)
		}
	}
}
