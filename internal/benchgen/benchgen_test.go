package benchgen

import (
	"testing"

	"repro/internal/extract"
	"repro/internal/sat"
)

// checkSatisfiable verifies the instance's CNF has a model reachable from
// the golden circuit (instances are satisfiable by construction).
func checkSatisfiable(t *testing.T, in *Instance) {
	t.Helper()
	s := sat.NewSolver(in.Formula, sat.Options{MaxConflicts: 200000})
	if got := s.Solve(); got != sat.Sat {
		t.Fatalf("%s: solver verdict %v, want SAT", in.Name, got)
	}
}

func TestSmallSuiteInstancesAreSatisfiable(t *testing.T) {
	for _, in := range SmallSuite() {
		checkSatisfiable(t, in)
	}
}

func TestOrChainShape(t *testing.T) {
	in := OrChain("or-50", 50, 4, 5010)
	pi, po, vars, clauses := in.Stats()
	if pi != 50 {
		t.Errorf("PI = %d want 50", pi)
	}
	if po != 4 {
		t.Errorf("PO = %d want 4", po)
	}
	if vars < 80 || vars > 400 {
		t.Errorf("vars = %d, outside or-k scale", vars)
	}
	if clauses < 150 || clauses > 1200 {
		t.Errorf("clauses = %d, outside or-k scale", clauses)
	}
	checkSatisfiable(t, in)
}

func TestQChainShape(t *testing.T) {
	in := QChain("75-10-1-q", 41, 8, 7510)
	pi, po, vars, _ := in.Stats()
	if po != 1 {
		t.Errorf("PO = %d want 1", po)
	}
	if pi != 83 { // seed input + 2 per segment; paper row reports 83
		t.Errorf("PI = %d want 83", pi)
	}
	if vars < 300 || vars > 700 {
		t.Errorf("vars = %d, outside q-chain scale", vars)
	}
	checkSatisfiable(t, in)
}

func TestIscasShape(t *testing.T) {
	in := Iscas("s-mid", 200, 2400, 5, 1)
	pi, po, vars, clauses := in.Stats()
	if pi != 200 {
		t.Errorf("PI = %d want 200", pi)
	}
	if po < 1 || po > 5 {
		t.Errorf("PO = %d want <= 5", po)
	}
	if vars < 2000 || clauses < 4000 {
		t.Errorf("scale too small: vars=%d clauses=%d", vars, clauses)
	}
	checkSatisfiable(t, in)
}

func TestProdShape(t *testing.T) {
	in := Prod("prod-mid", 100, 10, 8)
	pi, po, vars, clauses := in.Stats()
	if pi != 100 {
		t.Errorf("PI = %d want 100", pi)
	}
	if po != 2 {
		t.Errorf("PO = %d want 2", po)
	}
	// Prod rows are the densest family: clauses/vars well above 2.
	ratio := float64(clauses) / float64(vars)
	if ratio < 2 {
		t.Errorf("clause/var ratio = %.2f, want the densest family (>2)", ratio)
	}
	checkSatisfiable(t, in)
}

func TestDeterminism(t *testing.T) {
	a := OrChain("x", 30, 3, 42)
	b := OrChain("x", 30, 3, 42)
	if a.Formula.DIMACSString() != b.Formula.DIMACSString() {
		t.Error("OrChain not deterministic")
	}
	c := Prod("p", 40, 4, 7)
	d := Prod("p", 40, 4, 7)
	if c.Formula.DIMACSString() != d.Formula.DIMACSString() {
		t.Error("Prod not deterministic")
	}
}

func TestTable2InstanceCount(t *testing.T) {
	ins := Table2Instances()
	if len(ins) != 14 {
		t.Fatalf("Table II instances = %d want 14", len(ins))
	}
	families := map[string]int{}
	for _, in := range ins {
		families[in.Family]++
	}
	if families["or-k"] != 4 || families["q-chain"] != 4 || families["iscas"] != 3 || families["prod"] != 3 {
		t.Errorf("family split wrong: %v", families)
	}
}

func TestSuite60Count(t *testing.T) {
	ins := Suite60()
	if len(ins) != 60 {
		t.Fatalf("suite size = %d want 60", len(ins))
	}
	seen := map[string]bool{}
	for _, in := range ins {
		if seen[in.Name] {
			t.Errorf("duplicate instance name %q", in.Name)
		}
		seen[in.Name] = true
		if in.Formula.NumClauses() == 0 {
			t.Errorf("%s has no clauses", in.Name)
		}
	}
}

// TestExtractionRecoversStructure: the extractor must achieve an ops
// reduction on every family (the transformation's core claim).
func TestExtractionRecoversStructure(t *testing.T) {
	for _, in := range SmallSuite() {
		res, err := extract.Transform(in.Formula)
		if err != nil {
			t.Fatalf("%s: %v", in.Name, err)
		}
		cnfOps := in.Formula.OpCount2()
		cktOps := res.Circuit.OpCount2()
		if cktOps >= cnfOps {
			t.Errorf("%s: no ops reduction (circuit %d >= CNF %d)", in.Name, cktOps, cnfOps)
		}
		if len(res.Circuit.Inputs) == 0 {
			t.Errorf("%s: no primary inputs recovered", in.Name)
		}
	}
}

// TestGoldenAssignmentSatisfiesCNF: extending a random golden-circuit
// evaluation must satisfy the Tseitin CNF minus the XOR-ladder variables
// (checked via a solver instead, which covers them).
func TestGoldenAssignmentSatisfiesCNF(t *testing.T) {
	in := SmallSuite()[0]
	pi, _, _, _ := in.Stats()
	_ = pi
	s := sat.NewSolver(in.Formula, sat.Options{})
	if s.Solve() != sat.Sat {
		t.Fatal("unsat small instance")
	}
	if !in.Formula.Sat(s.Model()) {
		t.Fatal("solver model does not verify")
	}
}

func TestInstanceStringFormat(t *testing.T) {
	in := SmallSuite()[0]
	str := in.String()
	if str == "" || in.Name == "" || in.Family == "" {
		t.Error("incomplete instance metadata")
	}
}
