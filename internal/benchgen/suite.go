package benchgen

import "fmt"

// Table2Instances returns the 14 representative instances mirroring the
// paper's Table II: four or-k rows, four q-chain rows, three iscas rows,
// and three prod rows, sized to track the reported variable/clause scales.
// Generation is deterministic.
func Table2Instances() []*Instance {
	return []*Instance{
		OrChain("or-50-10-7-UC-10", 50, 4, 5010),
		OrChain("or-60-20-10-UC-10", 60, 5, 6020),
		OrChain("or-70-5-5-UC-10", 69, 7, 7005),
		OrChain("or-100-20-8-UC-10", 98, 10, 10020),
		QChain("75-10-1-q", 41, 8, 7510),
		QChain("75-10-10-q", 39, 9, 7520),
		QChain("90-10-1-q", 25, 13, 9010),
		QChain("90-10-10-q", 15, 24, 9020),
		Iscas("s15850a_3_2", 600, 10300, 3, 15832),
		Iscas("s15850a_7_4", 600, 10320, 7, 15874),
		Iscas("s15850a_15_7", 600, 10390, 15, 15857),
		Prod("Prod-8", 293, 150, 8),
		Prod("Prod-20", 677, 160, 20),
		Prod("Prod-32", 1061, 170, 32),
	}
}

// Fig4Instances returns the four-instance subset the paper uses in Fig. 3
// and Fig. 4 (one representative per family).
func Fig4Instances() []*Instance {
	return []*Instance{
		OrChain("or-100-20-8-UC-10", 98, 10, 10020),
		QChain("90-10-10-q", 15, 24, 9020),
		Iscas("s15850a_15_7", 600, 10390, 15, 15857),
		Prod("Prod-32", 1061, 170, 32),
	}
}

// Suite60 returns the 60-instance benchmark suite used for the paper's
// Fig. 2 scatter: 20 or-k, 16 q-chain, 12 iscas and 12 prod instances of
// graded sizes. Deterministic.
func Suite60() []*Instance {
	var out []*Instance
	for i := 0; i < 20; i++ {
		inputs := 40 + 5*i // 40 … 135
		groups := 3 + i%8
		out = append(out, OrChain(
			fmt.Sprintf("or-%d-%d-UC", inputs, groups), inputs, groups, int64(5000+i)))
	}
	for i := 0; i < 16; i++ {
		segs := 6 + i%7
		chain := 20 + 4*i // 20 … 80
		out = append(out, QChain(
			fmt.Sprintf("%d-%d-q", chain, segs), segs, chain, int64(7000+i)))
	}
	for i := 0; i < 12; i++ {
		inputs := 150 + 50*i // 150 … 700
		gates := inputs * 12
		nOut := 2 + i%9
		out = append(out, Iscas(
			fmt.Sprintf("s%d_%d", gates, nOut), inputs, gates, nOut, int64(15000+i)))
	}
	for i := 0; i < 12; i++ {
		inputs := 100 + 60*i // 100 … 760
		copies := 12 + 3*i
		out = append(out, Prod(
			fmt.Sprintf("Prod-x%d", i+2), inputs, copies, int64(33000+i)))
	}
	return out
}

// SmallSuite returns a reduced, fast-running suite (one small instance per
// family) used by tests and quick demos.
func SmallSuite() []*Instance {
	return []*Instance{
		OrChain("or-12-3-small", 12, 3, 1),
		QChain("20-3-q-small", 3, 6, 2),
		Iscas("iscas-small", 16, 60, 2, 3),
		Prod("prod-small", 16, 3, 4),
	}
}

// QualitySuite returns tiny, exactly-countable instances for the quality
// oracle (`paperbench -exp quality` and the statistical test tier): each
// is small enough for a BDD of its full CNF, so coverage and uniformity
// are measured against exact model counts. The or/prod rows declare their
// golden circuit's primary inputs as the sampling set — the natural
// independent support of a Tseitin encoding and the standard projected-
// sampling workload; the q row samples full-assignment identity. All rows
// are Tseitin encodings on purpose: every variable is functionally
// determined by the primary inputs, so the sampler's reachable set equals
// the CNF's model set and the quality gate's 1.0 coverage floor is
// attainable (see quality.ExactCount on why arbitrary CNFs may not be).
func QualitySuite() []*Instance {
	or := OrChain("or-6-2-tiny", 6, 2, 21)
	or.Formula.Projection = append([]int(nil), or.Enc.InputVar...)
	q := QChain("8-2-q-tiny", 2, 4, 22)
	pr := Prod("prod-5-2-tiny", 5, 2, 23)
	pr.Formula.Projection = append([]int(nil), pr.Enc.InputVar...)
	return []*Instance{or, q, pr}
}
