// Package benchgen generates synthetic SAT-sampling benchmark instances
// structurally matched to the four families in the paper's evaluation
// (Meel's model-counting/uniform-sampling suite, which is not redistributed
// here — see DESIGN.md):
//
//   - "or-k" — blasted OR/mux chains (or-50-10-7-UC-10 …): ~2k variables,
//     ~5 clauses per input, a handful of outputs.
//   - "q-chain" — long buffer/inverter chains stitched by 2:1 muxes
//     (75-10-1-q …): more variables than clauses, a single output, exactly
//     the shape of the paper's Fig. 1 example.
//   - "iscas" — random multi-level netlists at s15850a-like scale: hundreds
//     of primary inputs, tens of thousands of Tseitin clauses.
//   - "prod" — wide product networks (Prod-8/20/32): 4-input AND/OR layers,
//     two outputs, the densest clause-to-variable ratio.
//
// Every instance is produced by building the multi-level circuit first and
// Tseitin-encoding it, so the CNF contains genuine gate clause signatures
// (paper Eqs. 1–4) in gate order — the input distribution Algorithm 1 was
// designed for. Generation is deterministic in the seed.
package benchgen

import (
	"fmt"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/cnf"
)

// Instance is one generated benchmark.
type Instance struct {
	Name   string
	Family string
	// Golden is the circuit the CNF was encoded from (not visible to
	// samplers; kept for validation and statistics).
	Golden *circuit.Circuit
	// Formula is the Tseitin CNF handed to samplers and to the extractor.
	Formula *cnf.Formula
	// Enc maps golden circuit nodes to CNF variables.
	Enc *circuit.TseitinResult
}

// Stats summarizes the instance the way the paper's Table II reports it.
func (in *Instance) Stats() (pis, pos, vars, clauses int) {
	return len(in.Golden.Inputs), len(in.Golden.Outputs),
		in.Formula.NumVars, in.Formula.NumClauses()
}

func (in *Instance) String() string {
	pi, po, v, c := in.Stats()
	return fmt.Sprintf("%s: PI=%d PO=%d vars=%d clauses=%d", in.Name, pi, po, v, c)
}

// OrChain generates an "or-k"-style instance: inputs are split into nGroups
// chains; each chain folds its inputs through alternating OR / 2:1-mux
// steps and its final value is constrained to 1. The target output value is
// chosen so each chain is satisfiable by construction.
func OrChain(name string, inputs, nGroups int, seed int64) *Instance {
	if nGroups < 1 {
		nGroups = 1
	}
	r := rand.New(rand.NewSource(seed))
	c := circuit.NewCircuit()
	ins := make([]circuit.NodeID, inputs)
	for i := range ins {
		ins[i] = c.AddInput(fmt.Sprintf("i%d", i))
	}
	per := inputs / nGroups
	idx := 0
	for g := 0; g < nGroups; g++ {
		count := per
		if g == nGroups-1 {
			count = inputs - idx
		}
		if count < 2 {
			count = 2
			if idx+count > inputs {
				idx = inputs - count
			}
		}
		cur := ins[idx]
		for k := 1; k < count; k++ {
			next := ins[idx+k]
			switch r.Intn(3) {
			case 0: // OR step
				cur = c.AddGate(circuit.Or, cur, next)
			case 1: // AND-OR step
				n := c.AddGate(circuit.Not, cur)
				cur = c.AddGate(circuit.Or, c.AddGate(circuit.And, cur, next), n)
			default: // mux step with the previous value as select
				prev := ins[(idx+k-1+inputs)%inputs]
				a := c.AddGate(circuit.And, cur, next)
				nb := c.AddGate(circuit.Not, cur)
				b := c.AddGate(circuit.And, nb, prev)
				cur = c.AddGate(circuit.Or, a, b)
			}
		}
		idx += count
		// An OR-dominated chain is almost always drivable to 1; constrain
		// to the value reached from a random assignment to stay satisfiable
		// by construction.
		c.MarkOutput(cur, evalNode(c, cur, r))
	}
	return finish(name, "or-k", c)
}

// QChain generates a "*-q"-style instance: nSegments chains of buffers and
// inverters of length chainLen, stitched by 2:1 muxes that consume fresh
// primary inputs, ending in a single constrained output. Variables outnumber
// clauses, as in the paper's 75-10-*-q rows.
func QChain(name string, nSegments, chainLen int, seed int64) *Instance {
	r := rand.New(rand.NewSource(seed))
	c := circuit.NewCircuit()
	cur := c.AddInput("seed")
	for s := 0; s < nSegments; s++ {
		for k := 0; k < chainLen; k++ {
			if r.Intn(3) == 0 {
				cur = c.AddGate(circuit.Not, cur)
			} else {
				cur = c.AddGate(circuit.Buf, cur)
			}
		}
		// Mux step: out = cur ? a : b with fresh inputs a, b.
		a := c.AddInput(fmt.Sprintf("a%d", s))
		b := c.AddInput(fmt.Sprintf("b%d", s))
		t1 := c.AddGate(circuit.And, cur, a)
		nc := c.AddGate(circuit.Not, cur)
		t2 := c.AddGate(circuit.And, nc, b)
		cur = c.AddGate(circuit.Or, t1, t2)
	}
	c.MarkOutput(cur, evalNode(c, cur, r))
	return finish(name, "q-chain", c)
}

// Iscas generates an s15850a-like random multi-level netlist: `inputs`
// primary inputs, `gates` random 1–2 input gates biased toward AND/OR, and
// nOutputs constrained outputs chosen near the end of the netlist.
func Iscas(name string, inputs, gates, nOutputs int, seed int64) *Instance {
	r := rand.New(rand.NewSource(seed))
	c := circuit.NewCircuit()
	for i := 0; i < inputs; i++ {
		c.AddInput(fmt.Sprintf("i%d", i))
	}
	// Bias node selection toward recent nodes for realistic logic depth.
	pick := func() circuit.NodeID {
		n := c.NumNodes()
		if n == inputs || r.Intn(3) == 0 {
			return circuit.NodeID(r.Intn(n))
		}
		w := n / 4
		if w < 1 {
			w = 1
		}
		return circuit.NodeID(n - 1 - r.Intn(w))
	}
	for g := 0; g < gates; g++ {
		switch r.Intn(10) {
		case 0, 1: // 20% inverters/buffers
			if r.Intn(2) == 0 {
				c.AddGate(circuit.Not, pick())
			} else {
				c.AddGate(circuit.Buf, pick())
			}
		case 2: // 10% XOR
			a, b := pick(), pick()
			if a == b {
				c.AddGate(circuit.Not, a)
				continue
			}
			c.AddGate(circuit.Xor, a, b)
		default: // 70% AND/OR/NAND/NOR
			a, b := pick(), pick()
			if a == b {
				c.AddGate(circuit.Buf, a)
				continue
			}
			types := []circuit.GateType{circuit.And, circuit.Or, circuit.Nand, circuit.Nor}
			c.AddGate(types[r.Intn(len(types))], a, b)
		}
	}
	// Outputs: the last nOutputs distinct gate nodes, constrained to the
	// values they take under a random input assignment (satisfiable by
	// construction).
	in := make([]bool, inputs)
	for i := range in {
		in[i] = r.Intn(2) == 0
	}
	vals := c.Eval(in)
	for k := 0; k < nOutputs; k++ {
		id := circuit.NodeID(c.NumNodes() - 1 - k)
		if id < circuit.NodeID(inputs) {
			break
		}
		c.MarkOutput(id, vals[id])
	}
	return finish(name, "iscas", c)
}

// Prod generates a Prod-k-like instance: `copies` independent trees of
// 4-input AND/OR gates, each over a shuffled view of the shared primary
// inputs, XOR-folded into two constrained outputs. The wide gates give the
// dense clause-to-variable ratio of the Prod rows in Table II.
func Prod(name string, inputs, copies int, seed int64) *Instance {
	r := rand.New(rand.NewSource(seed))
	c := circuit.NewCircuit()
	ins := make([]circuit.NodeID, inputs)
	for i := range ins {
		ins[i] = c.AddInput(fmt.Sprintf("i%d", i))
	}
	var roots []circuit.NodeID
	perm := make([]circuit.NodeID, inputs)
	copy(perm, ins)
	for k := 0; k < copies; k++ {
		r.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		level := append([]circuit.NodeID(nil), perm...)
		for len(level) > 1 {
			var next []circuit.NodeID
			i := 0
			for ; i+3 < len(level); i += 4 {
				ty := circuit.And
				if r.Intn(2) == 1 {
					ty = circuit.Or
				}
				next = append(next, c.AddGate(ty, level[i], level[i+1], level[i+2], level[i+3]))
			}
			for ; i < len(level); i++ {
				next = append(next, level[i])
			}
			if len(next) == len(level) { // 2-3 leftovers: fold with OR
				g := next[0]
				for j := 1; j < len(next); j++ {
					g = c.AddGate(circuit.Or, g, next[j])
				}
				next = []circuit.NodeID{g}
			}
			level = next
		}
		roots = append(roots, level[0])
	}
	// XOR-fold the tree roots into two outputs.
	fold := func(part []circuit.NodeID) circuit.NodeID {
		cur := part[0]
		for i := 1; i < len(part); i++ {
			cur = c.AddGate(circuit.Xor, cur, part[i])
		}
		return cur
	}
	half := len(roots) / 2
	if half == 0 {
		half = 1
	}
	o1 := fold(roots[:half])
	o2 := o1
	if half < len(roots) {
		o2 = fold(roots[half:])
	}
	in := make([]bool, len(c.Inputs))
	rr := rand.New(rand.NewSource(seed + 1))
	for i := range in {
		in[i] = rr.Intn(2) == 0
	}
	vals := c.Eval(in)
	c.MarkOutput(o1, vals[o1])
	if o2 != o1 {
		c.MarkOutput(o2, vals[o2])
	}
	return finish(name, "prod", c)
}

func evalNode(c *circuit.Circuit, id circuit.NodeID, r *rand.Rand) bool {
	in := make([]bool, len(c.Inputs))
	for i := range in {
		in[i] = r.Intn(2) == 0
	}
	return c.Eval(in)[id]
}

func finish(name, family string, c *circuit.Circuit) *Instance {
	enc := c.Tseitin()
	return &Instance{Name: name, Family: family, Golden: c, Formula: enc.Formula, Enc: enc}
}
