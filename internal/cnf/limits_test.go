package cnf

import (
	"errors"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseLimitsAccept(t *testing.T) {
	in := "c comment\np cnf 4 2\n1 -2 0\n3 4 -1 0\n"
	lim := ParseLimits{MaxBytes: int64(len(in)), MaxVars: 4, MaxClauses: 2, MaxLiterals: 5}
	f, err := ParseDIMACSLimits(strings.NewReader(in), lim)
	if err != nil {
		t.Fatalf("parse at exactly the limits: %v", err)
	}
	if f.NumVars != 4 || len(f.Clauses) != 2 {
		t.Fatalf("got vars=%d clauses=%d", f.NumVars, len(f.Clauses))
	}
}

func TestParseLimitsReject(t *testing.T) {
	cases := []struct {
		name string
		in   string
		lim  ParseLimits
	}{
		{"bytes", "p cnf 2 1\n1 -2 0\n", ParseLimits{MaxBytes: 8}},
		{"declared vars", "p cnf 1000000 0\n", ParseLimits{MaxVars: 100}},
		{"used vars", "99 0\n", ParseLimits{MaxVars: 10}},
		{"clauses", "1 0\n2 0\n3 0\n", ParseLimits{MaxClauses: 2}},
		{"literals", "1 2 3 4 0\n", ParseLimits{MaxLiterals: 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseDIMACSLimits(strings.NewReader(tc.in), tc.lim)
			if err == nil {
				t.Fatal("expected a limit error, got nil")
			}
			if !errors.Is(err, ErrLimit) {
				t.Fatalf("error %v is not ErrLimit", err)
			}
		})
	}
}

func TestParseLimitsMaxInt64Bytes(t *testing.T) {
	// MaxBytes at the int64 ceiling must not overflow the reader's
	// one-byte-past-the-limit arithmetic (regression: lr.max+1 wrapped).
	in := "p cnf 2 1\n1 -2 0\n"
	f, err := ParseDIMACSLimits(strings.NewReader(in), ParseLimits{MaxBytes: math.MaxInt64})
	if err != nil {
		t.Fatalf("MaxInt64 byte limit: %v", err)
	}
	if f.NumVars != 2 || len(f.Clauses) != 1 {
		t.Fatalf("got vars=%d clauses=%d", f.NumVars, len(f.Clauses))
	}
}

func TestParseLimitsMalformedIsNotErrLimit(t *testing.T) {
	_, err := ParseDIMACSLimits(strings.NewReader("1 banana 0\n"), DefaultParseLimits())
	if err == nil || errors.Is(err, ErrLimit) {
		t.Fatalf("malformed input must fail without ErrLimit, got %v", err)
	}
}

func TestLimitsForBytes(t *testing.T) {
	if got := LimitsForBytes(0); got != (ParseLimits{}) {
		t.Fatalf("LimitsForBytes(0) = %+v, want unlimited zero value", got)
	}
	lim := LimitsForBytes(1 << 20)
	if lim.MaxBytes != 1<<20 || lim.MaxVars != 1<<19 || lim.MaxClauses != 1<<18 || lim.MaxLiterals != 1<<19 {
		t.Fatalf("LimitsForBytes(1MiB) = %+v", lim)
	}
	// The derived shape caps must admit any formula whose DIMACS text fits
	// the byte budget (density argument: >= 2 bytes per literal, >= 4 per
	// clause), so -maxcnf never rejects a file smaller than its value for
	// shape reasons.
	in := "p cnf 3 2\n1 2 0\n-3 0\n"
	if _, err := ParseDIMACSLimits(strings.NewReader(in), LimitsForBytes(int64(len(in)))); err != nil {
		t.Fatalf("formula within its own byte budget rejected: %v", err)
	}
}

func TestReadDIMACSFileLimits(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.cnf")
	f := New(3)
	f.AddClause(1, -2)
	f.AddClause(3)
	if err := f.WriteDIMACSFile(path); err != nil {
		t.Fatal(err)
	}
	g, err := ReadDIMACSFileLimits(path, DefaultParseLimits())
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVars != 3 || len(g.Clauses) != 2 {
		t.Fatalf("round trip: vars=%d clauses=%d", g.NumVars, len(g.Clauses))
	}
	if _, err := ReadDIMACSFileLimits(path, ParseLimits{MaxBytes: 4}); !errors.Is(err, ErrLimit) {
		t.Fatalf("tiny byte limit: got %v, want ErrLimit", err)
	}
}
