package cnf

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLitBasics(t *testing.T) {
	l := Lit(5)
	if l.Var() != 5 || !l.Positive() {
		t.Error("positive literal misread")
	}
	n := l.Neg()
	if n.Var() != 5 || n.Positive() {
		t.Error("negation misread")
	}
	if !l.Sat(true) || l.Sat(false) {
		t.Error("positive literal satisfaction wrong")
	}
	if n.Sat(true) || !n.Sat(false) {
		t.Error("negative literal satisfaction wrong")
	}
}

func TestClauseSat(t *testing.T) {
	c := Clause{1, -2, 3}
	cases := []struct {
		assign []bool
		want   bool
	}{
		{[]bool{true, true, false}, true},
		{[]bool{false, false, false}, true},
		{[]bool{false, true, false}, false},
		{[]bool{false, true, true}, true},
	}
	for _, tc := range cases {
		if got := c.Sat(tc.assign); got != tc.want {
			t.Errorf("Sat(%v) = %v want %v", tc.assign, got, tc.want)
		}
	}
}

func TestClauseNormalize(t *testing.T) {
	c := Clause{3, -1, 3, 2}
	n, taut := c.Normalize()
	if taut {
		t.Fatal("non-tautology reported tautological")
	}
	want := Clause{-1, 2, 3}
	if len(n) != len(want) {
		t.Fatalf("Normalize = %v want %v", n, want)
	}
	for i := range want {
		if n[i] != want[i] {
			t.Fatalf("Normalize = %v want %v", n, want)
		}
	}
	if _, taut := (Clause{1, -1, 2}).Normalize(); !taut {
		t.Error("tautology not detected")
	}
}

func TestFormulaSatAndFirstUnsat(t *testing.T) {
	f := New(3)
	f.AddClause(1, 2)
	f.AddClause(-1, 3)
	model := []bool{true, false, true}
	if !f.Sat(model) {
		t.Error("model rejected")
	}
	if i := f.FirstUnsat(model); i != -1 {
		t.Errorf("FirstUnsat(model) = %d want -1", i)
	}
	non := []bool{true, false, false}
	if f.Sat(non) {
		t.Error("non-model accepted")
	}
	if i := f.FirstUnsat(non); i != 1 {
		t.Errorf("FirstUnsat = %d want 1", i)
	}
}

func TestAddClauseGrowsVars(t *testing.T) {
	f := New(0)
	f.AddClause(4, -9)
	if f.NumVars != 9 {
		t.Errorf("NumVars = %d want 9", f.NumVars)
	}
}

func TestOpCount2(t *testing.T) {
	f := New(3)
	f.AddClause(1, 2, 3) // 2 ORs
	f.AddClause(-1, 2)   // 1 OR
	f.AddClause(3)       // 0
	// 3 ops within clauses + 2 ANDs joining 3 clauses = 5.
	if got := f.OpCount2(); got != 5 {
		t.Errorf("OpCount2 = %d want 5", got)
	}
	if got := New(2).OpCount2(); got != 0 {
		t.Errorf("empty OpCount2 = %d want 0", got)
	}
}

const paperExample = `c paper Fig. 1 CNF example
p cnf 14 21
-1 -2 0
1 2 0
-2 3 0
2 -3 0
-3 4 0
3 -4 0
-4 -11 5 0
-4 11 -5 0
4 -12 5 0
4 12 -5 0
-6 7 0
6 -7 0
-7 8 0
7 -8 0
-8 -9 0
8 9 0
-9 -13 10 0
-9 13 -10 0
9 -14 10 0
9 14 -10 0
10 0
`

func TestParseDIMACSPaperExample(t *testing.T) {
	f, err := ParseDIMACSString(paperExample)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVars != 14 {
		t.Errorf("NumVars = %d want 14", f.NumVars)
	}
	if f.NumClauses() != 21 {
		t.Errorf("NumClauses = %d want 21", f.NumClauses())
	}
	if got := f.Clauses[6]; got[0] != -4 || got[1] != -11 || got[2] != 5 {
		t.Errorf("clause 6 = %v, literal order not preserved", got)
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	f, err := ParseDIMACSString(paperExample)
	if err != nil {
		t.Fatal(err)
	}
	out := f.DIMACSString("round trip")
	g, err := ParseDIMACSString(out)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if g.NumVars != f.NumVars || g.NumClauses() != f.NumClauses() {
		t.Fatal("round trip changed shape")
	}
	for i := range f.Clauses {
		if len(f.Clauses[i]) != len(g.Clauses[i]) {
			t.Fatalf("clause %d changed", i)
		}
		for j := range f.Clauses[i] {
			if f.Clauses[i][j] != g.Clauses[i][j] {
				t.Fatalf("clause %d literal %d changed", i, j)
			}
		}
	}
	if !strings.Contains(out, "c round trip") {
		t.Error("comment not written")
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	bad := []string{
		"p cnf x 3\n1 0\n",
		"p dnf 3 1\n1 0\n",
		"p cnf 3\n1 0\n",
		"1 2 three 0\n",
		"1 2 3\n", // unterminated
	}
	for _, in := range bad {
		if _, err := ParseDIMACSString(in); err == nil {
			t.Errorf("ParseDIMACSString(%q) unexpectedly succeeded", in)
		}
	}
}

func TestParseDIMACSMultiClauseLine(t *testing.T) {
	f, err := ParseDIMACSString("1 2 0 -1 3 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if f.NumClauses() != 2 {
		t.Fatalf("NumClauses = %d want 2", f.NumClauses())
	}
}

func TestUnitPropagate(t *testing.T) {
	f := New(4)
	f.AddClause(1)
	f.AddClause(-1, 2)
	f.AddClause(-2, -3)
	f.AddClause(3, 4)
	ext, conflict := f.UnitPropagate(map[int]bool{})
	if conflict {
		t.Fatal("unexpected conflict")
	}
	want := map[int]bool{1: true, 2: true, 3: false, 4: true}
	for v, val := range want {
		if got, ok := ext[v]; !ok || got != val {
			t.Errorf("var %d = %v,%v want %v", v, got, ok, val)
		}
	}
}

func TestUnitPropagateConflict(t *testing.T) {
	f := New(2)
	f.AddClause(1)
	f.AddClause(-1)
	if _, conflict := f.UnitPropagate(map[int]bool{}); !conflict {
		t.Error("conflict not detected")
	}
}

func TestProject(t *testing.T) {
	assign := []bool{true, false, true, true}
	got := Project(assign, []int{4, 2})
	if len(got) != 2 || got[0] != true || got[1] != false {
		t.Errorf("Project = %v", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := New(2)
	f.AddClause(1, 2)
	g := f.Clone()
	g.Clauses[0][0] = -1
	if f.Clauses[0][0] != 1 {
		t.Error("Clone shares clause storage")
	}
}

// Property: a random assignment satisfies the formula iff every clause has a
// literal it satisfies (cross-check Sat against a naive evaluator).
func TestSatMatchesNaiveProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nv := 1 + r.Intn(8)
		f := New(nv)
		for i := 0; i < 1+r.Intn(10); i++ {
			k := 1 + r.Intn(3)
			c := make([]Lit, k)
			for j := range c {
				v := 1 + r.Intn(nv)
				if r.Intn(2) == 0 {
					c[j] = Lit(v)
				} else {
					c[j] = Lit(-v)
				}
			}
			f.AddClause(c...)
		}
		assign := make([]bool, nv)
		for i := range assign {
			assign[i] = r.Intn(2) == 0
		}
		naive := true
		for _, c := range f.Clauses {
			cs := false
			for _, l := range c {
				v := assign[l.Var()-1]
				if (l > 0 && v) || (l < 0 && !v) {
					cs = true
				}
			}
			naive = naive && cs
		}
		return f.Sat(assign) == naive
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
