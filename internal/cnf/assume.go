package cnf

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Assumption lists pin literals for one sampling request: every returned
// solution must satisfy each pinned literal. The grammar, canonical form,
// and key derivation live here because three independent processes must
// agree on them byte-for-byte — the serving replica (?assume=), the
// satsharded edge (routing key), and the compile-tier store (artifact
// identity).

// ParseAssumeList reads a comma-separated assumption literal list — the
// spelling shared by satsample's -assume flag and satserved's ?assume=
// parameter. Literals are DIMACS-signed integers (+v pins variable v true,
// -v pins it false). An empty (or all-whitespace) spec is no assumption
// (nil, nil); a spec with tokens but no literals is an error, so a typo
// like "," cannot silently mean "no pins". Range, duplicate and
// contradiction checks are ValidateAssumptions' job once the variable
// count is known.
func ParseAssumeList(spec string) ([]Lit, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []Lit
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		v, err := strconv.Atoi(tok)
		if err != nil {
			return nil, fmt.Errorf("cnf: bad assumption literal %q", tok)
		}
		if v == 0 {
			return nil, fmt.Errorf("cnf: assumption literal 0 is invalid")
		}
		out = append(out, Lit(v))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cnf: assumption list %q names no literals", spec)
	}
	return out, nil
}

// CanonicalAssume returns the canonical form of an assumption list: sorted
// by variable (negative literal first for the same variable) with exact
// duplicates removed. It is total — contradictory pairs (v and ¬v) are
// kept, so key derivation stays deterministic on any input; rejecting them
// is ValidateAssumptions' job. The input slice is not modified; an empty
// input canonicalizes to nil.
func CanonicalAssume(assume []Lit) []Lit {
	if len(assume) == 0 {
		return nil
	}
	out := append([]Lit(nil), assume...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Var() != out[j].Var() {
			return out[i].Var() < out[j].Var()
		}
		return out[i] < out[j]
	})
	w := 0
	for i := 0; i < len(out); i++ {
		if w > 0 && out[w-1] == out[i] {
			continue
		}
		out[w] = out[i]
		w++
	}
	return out[:w]
}

// ValidateAssumptions checks an assumption list against the formula: every
// literal must be non-zero, its variable in 1..NumVars, and no variable
// may be pinned to both polarities. Exact duplicates are fine (they
// canonicalize away).
func ValidateAssumptions(numVars int, assume []Lit) error {
	seen := make(map[int]bool, len(assume))
	for _, l := range assume {
		if l == 0 {
			return fmt.Errorf("cnf: assumption literal 0 is invalid")
		}
		v := l.Var()
		if v > numVars {
			return fmt.Errorf("cnf: assumption literal %d out of range 1..%d", int(l), numVars)
		}
		if pol, ok := seen[v]; ok && pol != l.Positive() {
			return fmt.Errorf("cnf: contradictory assumptions %d and %d", -int(l), int(l))
		}
		seen[v] = l.Positive()
	}
	return nil
}

// AssumeKey derives the cache identity of a problem specialized under
// assumptions: sha256 over the base content hash and the canonical literal
// sequence, hex-encoded like ContentHash. An empty assumption set returns
// baseKey unchanged, so unspecialized artifacts keep their identity. The
// edge router, the replica, and the store all call this with whatever
// order/duplication the client sent and land on the same key — the
// canonicalization inside is the contract.
func AssumeKey(baseKey string, assume []Lit) string {
	canon := CanonicalAssume(assume)
	if len(canon) == 0 {
		return baseKey
	}
	h := sha256.New()
	h.Write([]byte(baseKey))
	var buf [binary.MaxVarintLen64]byte
	writeInt := func(v int64) {
		n := binary.PutVarint(buf[:], v)
		h.Write(buf[:n])
	}
	writeInt(int64(len(canon)))
	for _, l := range canon {
		writeInt(int64(l))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Condition returns f conditioned on the assumptions: clauses satisfied by
// a pinned literal are dropped, falsified literals are removed from the
// remaining clauses, and one unit clause per assumption is appended so the
// pinned variables stay constrained (and counted) in the result. NumVars
// and the projection are unchanged. A clause that loses all its literals
// stays as an empty clause — the standard unsatisfiable marker. This is
// the ground-truth semantics of ?assume=: the specialized sampler must
// sample exactly the models of f.Condition(assume).
func (f *Formula) Condition(assume []Lit) (*Formula, error) {
	canon := CanonicalAssume(assume)
	if err := ValidateAssumptions(f.NumVars, canon); err != nil {
		return nil, err
	}
	val := make(map[int]bool, len(canon))
	for _, l := range canon {
		val[l.Var()] = l.Positive()
	}
	g := &Formula{NumVars: f.NumVars}
	if f.Projection != nil {
		g.Projection = append([]int(nil), f.Projection...)
	}
	for _, c := range f.Clauses {
		sat := false
		keep := make(Clause, 0, len(c))
		for _, l := range c {
			if v, ok := val[l.Var()]; ok {
				if l.Sat(v) {
					sat = true
					break
				}
				continue
			}
			keep = append(keep, l)
		}
		if !sat {
			g.Clauses = append(g.Clauses, keep)
		}
	}
	for _, l := range canon {
		g.Clauses = append(g.Clauses, Clause{l})
	}
	return g, nil
}
