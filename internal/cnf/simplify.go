package cnf

import "sort"

// SimplifyResult reports what a preprocessing pass did.
type SimplifyResult struct {
	UnitsFixed         int // variables fixed by unit propagation
	TautologiesRemoved int
	Subsumed           int // clauses removed by subsumption
	Strengthened       int // literals removed by self-subsumption
	PureFixed          int // variables fixed by pure-literal elimination
}

// Simplify applies standard CNF preprocessing in place: unit propagation,
// tautology removal, duplicate-literal removal, forward subsumption,
// self-subsuming resolution, and pure-literal elimination, iterated to a
// fixpoint. The simplified formula is equisatisfiable with the original
// (pure-literal elimination preserves satisfiability, not model count) —
// use it for solving pipelines, not for counting or sampling pipelines.
// It returns the accumulated statistics and false when the formula was
// found unsatisfiable.
func (f *Formula) Simplify() (SimplifyResult, bool) {
	var res SimplifyResult
	fixed := map[int]bool{} // var -> value, from units and pure literals
	for {
		progress := false

		// Normalize: drop tautologies and duplicate literals, apply fixed.
		out := f.Clauses[:0]
		for _, c := range f.Clauses {
			norm, taut := c.Normalize()
			if taut {
				res.TautologiesRemoved++
				progress = true
				continue
			}
			keep := norm[:0]
			sat := false
			for _, l := range norm {
				if val, ok := fixed[l.Var()]; ok {
					if l.Sat(val) {
						sat = true
						break
					}
					continue // false literal dropped
				}
				keep = append(keep, l)
			}
			if sat {
				progress = true
				continue
			}
			if len(keep) == 0 {
				return res, false
			}
			if len(keep) == 1 {
				v := keep[0].Var()
				val := keep[0].Positive()
				if cur, ok := fixed[v]; ok && cur != val {
					return res, false
				}
				if _, ok := fixed[v]; !ok {
					fixed[v] = val
					res.UnitsFixed++
					progress = true
				}
				continue
			}
			out = append(out, keep)
		}
		f.Clauses = out

		// Forward subsumption + self-subsuming resolution via signatures.
		if f.subsumptionPass(&res) {
			progress = true
		}

		// Pure literals: variables occurring in a single polarity.
		polarity := make(map[int]int8) // 1 pos only, 2 neg only, 3 both
		for _, c := range f.Clauses {
			for _, l := range c {
				if l.Positive() {
					polarity[l.Var()] |= 1
				} else {
					polarity[l.Var()] |= 2
				}
			}
		}
		for v, p := range polarity {
			if _, ok := fixed[v]; ok {
				continue
			}
			if p == 1 || p == 2 {
				fixed[v] = p == 1
				res.PureFixed++
				progress = true
			}
		}

		if !progress {
			break
		}
	}
	// Re-inject fixed variables as units so the formula remains
	// self-contained.
	for v, val := range fixed {
		l := Lit(v)
		if !val {
			l = -l
		}
		f.Clauses = append(f.Clauses, Clause{l})
	}
	sort.Slice(f.Clauses, func(i, j int) bool {
		return clauseLess(f.Clauses[i], f.Clauses[j])
	})
	return res, true
}

func clauseLess(a, b Clause) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// signature is a 64-bit Bloom-style clause abstraction: bit v%64 set for
// each variable. A clause can only subsume another when its signature is a
// subset of the other's.
func signature(c Clause) uint64 {
	var s uint64
	for _, l := range c {
		s |= 1 << (uint(l.Var()) % 64)
	}
	return s
}

// subsumptionPass removes subsumed clauses and strengthens clauses by
// self-subsuming resolution. Returns true when anything changed.
func (f *Formula) subsumptionPass(res *SimplifyResult) bool {
	changed := false
	// Sort by length so shorter (stronger) clauses come first.
	sort.Slice(f.Clauses, func(i, j int) bool { return len(f.Clauses[i]) < len(f.Clauses[j]) })
	sigs := make([]uint64, len(f.Clauses))
	for i, c := range f.Clauses {
		sigs[i] = signature(c)
	}
	removed := make([]bool, len(f.Clauses))
	for i, c := range f.Clauses {
		if removed[i] {
			continue
		}
		for j := i + 1; j < len(f.Clauses); j++ {
			if removed[j] {
				continue
			}
			if sigs[i]&^sigs[j] != 0 {
				continue
			}
			switch subsumes(c, f.Clauses[j]) {
			case subsumeFull:
				removed[j] = true
				res.Subsumed++
				changed = true
			case subsumeSelf:
				// c subsumes f.Clauses[j] after flipping one literal:
				// remove that literal from clause j.
				f.Clauses[j] = strengthen(c, f.Clauses[j])
				sigs[j] = signature(f.Clauses[j])
				res.Strengthened++
				changed = true
			}
		}
	}
	if changed {
		out := f.Clauses[:0]
		for i, c := range f.Clauses {
			if !removed[i] {
				out = append(out, c)
			}
		}
		f.Clauses = out
	}
	return changed
}

type subsumeKind uint8

const (
	subsumeNone subsumeKind = iota
	subsumeFull             // a ⊆ b
	subsumeSelf             // a ⊆ b with exactly one literal negated
)

// subsumes reports whether every literal of a appears in b (full), or all
// but exactly one literal which appears negated (self-subsumption).
func subsumes(a, b Clause) subsumeKind {
	if len(a) > len(b) {
		return subsumeNone
	}
	flips := 0
	for _, la := range a {
		found := false
		for _, lb := range b {
			if la == lb {
				found = true
				break
			}
			if la == -lb {
				found = true
				flips++
				break
			}
		}
		if !found {
			return subsumeNone
		}
	}
	switch flips {
	case 0:
		return subsumeFull
	case 1:
		return subsumeSelf
	}
	return subsumeNone
}

// strengthen removes from b the literal whose negation appears in a.
func strengthen(a, b Clause) Clause {
	for _, la := range a {
		for k, lb := range b {
			if la == -lb {
				out := make(Clause, 0, len(b)-1)
				out = append(out, b[:k]...)
				out = append(out, b[k+1:]...)
				return out
			}
		}
	}
	return b
}
