package cnf

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// ErrLimit marks a parse failure caused by a ParseLimits bound rather than
// malformed input. Callers serving untrusted input can map it to a
// "payload too large" response while treating other parse errors as
// malformed requests: errors.Is(err, cnf.ErrLimit).
var ErrLimit = errors.New("input exceeds parse limit")

// ParseLimits bounds what ParseDIMACSLimits will accept from untrusted
// input. A zero field means "no bound on that dimension"; the zero value
// accepts anything (and is what plain ParseDIMACS uses). The limits bound
// both the raw input size and the parsed shape, so a tiny input cannot
// declare a huge formula ("p cnf 1000000000 1") and force large
// allocations downstream.
type ParseLimits struct {
	MaxBytes    int64 // raw input bytes read
	MaxVars     int   // highest variable index (declared or used)
	MaxClauses  int   // clauses parsed
	MaxLiterals int   // total literals across all clauses
}

// DefaultParseLimits are the service-grade bounds used by satserved for
// untrusted network input: generous for real benchmark formulas, far below
// anything that could exhaust memory in the parser or the compile pipeline
// behind it.
func DefaultParseLimits() ParseLimits {
	return ParseLimits{
		MaxBytes:    8 << 20,  // 8 MiB of DIMACS text
		MaxVars:     1 << 20,  // 1M variables
		MaxClauses:  2 << 20,  // 2M clauses
		MaxLiterals: 16 << 20, // 16M literals
	}
}

// LimitsForBytes derives ParseLimits from a single byte budget — the shared
// input-validation path behind the CLIs' -maxcnf flag. The shape bounds
// follow from DIMACS density: a literal costs at least two bytes ("1 "), a
// clause at least four ("1 0\n"), and a variable index must be declared or
// used, so none of them can exceed the byte budget's carrying capacity.
// maxBytes <= 0 returns the unlimited zero value.
func LimitsForBytes(maxBytes int64) ParseLimits {
	if maxBytes <= 0 {
		return ParseLimits{}
	}
	capInt := func(v int64) int {
		const maxInt = int64(^uint(0) >> 1)
		if v > maxInt {
			return int(maxInt)
		}
		return int(v)
	}
	return ParseLimits{
		MaxBytes:    maxBytes,
		MaxVars:     capInt(maxBytes / 2),
		MaxClauses:  capInt(maxBytes / 4),
		MaxLiterals: capInt(maxBytes / 2),
	}
}

func limitErr(what string, limit int64) error {
	return fmt.Errorf("cnf: %s exceeds limit %d: %w", what, limit, ErrLimit)
}

// limitedReader fails (rather than silently truncating, as io.LimitedReader
// would) once more than max bytes have been read. It reads at most one byte
// past the limit, so an input of exactly max bytes parses cleanly while a
// longer one errors as soon as the overflow byte appears.
type limitedReader struct {
	r    io.Reader
	read int64
	max  int64
}

func (lr *limitedReader) Read(p []byte) (int, error) {
	if lr.read > lr.max {
		return 0, limitErr("input size", lr.max)
	}
	// lr.max+1 would overflow at MaxInt64; a limit that large can never
	// be exceeded, so the truncation is simply skipped.
	if lr.max < math.MaxInt64 {
		if allow := lr.max + 1 - lr.read; int64(len(p)) > allow {
			p = p[:allow]
		}
	}
	n, err := lr.r.Read(p)
	lr.read += int64(n)
	if lr.read > lr.max {
		return n, limitErr("input size", lr.max)
	}
	return n, err
}

// ParseDIMACS reads a CNF in DIMACS format. Comment lines ("c ...") are
// ignored; the problem line ("p cnf <vars> <clauses>") is optional but, when
// present, fixes NumVars (the clause count is checked loosely: extra or
// fewer clauses only produce an error when strict problem-line accounting
// is violated by a trailing junk token).
func ParseDIMACS(r io.Reader) (*Formula, error) {
	return ParseDIMACSLimits(r, ParseLimits{})
}

// ParseDIMACSLimits parses DIMACS input while enforcing lim — the
// untrusted-input entry point. Violations return an error satisfying
// errors.Is(err, ErrLimit); limits are checked as the input streams, so a
// hostile input is rejected after at most lim.MaxBytes bytes of work.
func ParseDIMACSLimits(r io.Reader, lim ParseLimits) (f *Formula, err error) {
	var lr *limitedReader
	if lim.MaxBytes > 0 {
		lr = &limitedReader{r: r, max: lim.MaxBytes}
		r = lr
		// An input cut off at the byte limit can fail as a malformed
		// partial line before the scanner surfaces the reader's error;
		// the limit, not the truncation artifact, is the real cause.
		defer func() {
			if err != nil && !errors.Is(err, ErrLimit) && lr.read > lr.max {
				f, err = nil, limitErr("input size", lr.max)
			}
		}()
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	f = &Formula{}
	declaredVars := -1
	var cur Clause
	line, lits := 0, 0
	projSeen := map[int]bool{}
	checkVar := func(v int) error {
		if lim.MaxVars > 0 && v > lim.MaxVars {
			return limitErr("variable count", int64(lim.MaxVars))
		}
		return nil
	}
	// parseProjection consumes one "c ind ..."/"p show ..." line: positive
	// variable ids terminated by a 0 that must be the line's last token.
	// Multiple projection lines accumulate; duplicates are rejected here and
	// range (vs the final NumVars) is checked once the whole input is read.
	parseProjection := func(tokens []string) error {
		terminated := false
		for _, tok := range tokens {
			if terminated {
				return fmt.Errorf("cnf: token %q after projection terminator on line %d", tok, line)
			}
			n, err := strconv.Atoi(tok)
			if err != nil {
				return fmt.Errorf("cnf: bad projection token %q on line %d", tok, line)
			}
			if n == 0 {
				terminated = true
				continue
			}
			if n < 0 {
				return fmt.Errorf("cnf: negative projection variable %d on line %d", n, line)
			}
			if err := checkVar(n); err != nil {
				return err
			}
			if projSeen[n] {
				return fmt.Errorf("cnf: duplicate projection variable %d on line %d", n, line)
			}
			projSeen[n] = true
			f.Projection = append(f.Projection, n)
		}
		if !terminated {
			return fmt.Errorf("cnf: unterminated projection line %d (missing trailing 0)", line)
		}
		return nil
	}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "c") {
			// "c ind v1 v2 ... 0" is the sampling community's projection
			// ("independent support") convention; every other c-line is a
			// plain comment.
			if fields := strings.Fields(text); len(fields) >= 2 && fields[0] == "c" && fields[1] == "ind" {
				if err := parseProjection(fields[2:]); err != nil {
					return nil, err
				}
			}
			continue
		}
		if strings.HasPrefix(text, "p") {
			fields := strings.Fields(text)
			if len(fields) >= 2 && fields[1] == "show" {
				// "p show v1 v2 ... 0": the projected-model-counting spelling
				// of the same declaration.
				if err := parseProjection(fields[2:]); err != nil {
					return nil, err
				}
				continue
			}
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("cnf: bad problem line %d: %q", line, text)
			}
			nv, err := strconv.Atoi(fields[2])
			if err != nil || nv < 0 {
				return nil, fmt.Errorf("cnf: bad variable count on line %d: %q", line, text)
			}
			if _, err := strconv.Atoi(fields[3]); err != nil {
				return nil, fmt.Errorf("cnf: bad clause count on line %d: %q", line, text)
			}
			if err := checkVar(nv); err != nil {
				return nil, err
			}
			declaredVars = nv
			continue
		}
		for _, tok := range strings.Fields(text) {
			n, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("cnf: bad token %q on line %d", tok, line)
			}
			if n == 0 {
				if lim.MaxClauses > 0 && len(f.Clauses) >= lim.MaxClauses {
					return nil, limitErr("clause count", int64(lim.MaxClauses))
				}
				f.AddClause(cur...)
				cur = cur[:0]
				continue
			}
			if err := checkVar(Lit(n).Var()); err != nil {
				return nil, err
			}
			lits++
			if lim.MaxLiterals > 0 && lits > lim.MaxLiterals {
				return nil, limitErr("literal count", int64(lim.MaxLiterals))
			}
			cur = append(cur, Lit(n))
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, ErrLimit) {
			return nil, err
		}
		return nil, fmt.Errorf("cnf: read: %w", err)
	}
	if len(cur) != 0 {
		return nil, fmt.Errorf("cnf: unterminated clause at end of input")
	}
	if declaredVars > f.NumVars {
		f.NumVars = declaredVars
	}
	// Projection range is only checkable once the final variable count is
	// known ("c ind" lines may precede the problem line).
	if err := ValidateProjection(f.NumVars, f.Projection); err != nil {
		return nil, err
	}
	return f, nil
}

// ParseDIMACSString parses a DIMACS CNF from a string.
func ParseDIMACSString(s string) (*Formula, error) {
	return ParseDIMACS(strings.NewReader(s))
}

// ReadDIMACSFile parses a DIMACS CNF file from disk.
func ReadDIMACSFile(path string) (*Formula, error) {
	return ReadDIMACSFileLimits(path, ParseLimits{})
}

// ReadDIMACSFileLimits parses a DIMACS CNF file while enforcing lim — the
// path the CLIs' -maxcnf flag goes through.
func ReadDIMACSFileLimits(path string, lim ParseLimits) (*Formula, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	return ParseDIMACSLimits(fh, lim)
}

// WriteDIMACS writes the formula in DIMACS format, with an optional list of
// comment lines emitted before the problem line.
func (f *Formula) WriteDIMACS(w io.Writer, comments ...string) error {
	bw := bufio.NewWriter(w)
	for _, c := range comments {
		if _, err := fmt.Fprintf(bw, "c %s\n", c); err != nil {
			return err
		}
	}
	// The projection round-trips as "c ind" lines (the convention samplers
	// and counters read), chunked the way real instances ship them.
	for i := 0; i < len(f.Projection); i += 16 {
		end := min(i+16, len(f.Projection))
		if _, err := fmt.Fprint(bw, "c ind"); err != nil {
			return err
		}
		for _, v := range f.Projection[i:end] {
			if _, err := fmt.Fprintf(bw, " %d", v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw, " 0"); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", f.NumVars, len(f.Clauses)); err != nil {
		return err
	}
	for _, c := range f.Clauses {
		for _, l := range c {
			if _, err := fmt.Fprintf(bw, "%d ", int(l)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw, "0"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DIMACSString renders the formula as a DIMACS string.
func (f *Formula) DIMACSString(comments ...string) string {
	var b strings.Builder
	if err := f.WriteDIMACS(&b, comments...); err != nil {
		panic(err) // strings.Builder cannot fail
	}
	return b.String()
}

// WriteDIMACSFile writes the formula to a file.
func (f *Formula) WriteDIMACSFile(path string, comments ...string) error {
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.WriteDIMACS(fh, comments...); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}
