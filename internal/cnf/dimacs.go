package cnf

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ParseDIMACS reads a CNF in DIMACS format. Comment lines ("c ...") are
// ignored; the problem line ("p cnf <vars> <clauses>") is optional but, when
// present, fixes NumVars (the clause count is checked loosely: extra or
// fewer clauses only produce an error when strict problem-line accounting
// is violated by a trailing junk token).
func ParseDIMACS(r io.Reader) (*Formula, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	f := &Formula{}
	declaredVars := -1
	var cur Clause
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "c") {
			continue
		}
		if strings.HasPrefix(text, "p") {
			fields := strings.Fields(text)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("cnf: bad problem line %d: %q", line, text)
			}
			nv, err := strconv.Atoi(fields[2])
			if err != nil || nv < 0 {
				return nil, fmt.Errorf("cnf: bad variable count on line %d: %q", line, text)
			}
			if _, err := strconv.Atoi(fields[3]); err != nil {
				return nil, fmt.Errorf("cnf: bad clause count on line %d: %q", line, text)
			}
			declaredVars = nv
			continue
		}
		for _, tok := range strings.Fields(text) {
			n, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("cnf: bad token %q on line %d", tok, line)
			}
			if n == 0 {
				f.AddClause(cur...)
				cur = cur[:0]
				continue
			}
			cur = append(cur, Lit(n))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cnf: read: %w", err)
	}
	if len(cur) != 0 {
		return nil, fmt.Errorf("cnf: unterminated clause at end of input")
	}
	if declaredVars > f.NumVars {
		f.NumVars = declaredVars
	}
	return f, nil
}

// ParseDIMACSString parses a DIMACS CNF from a string.
func ParseDIMACSString(s string) (*Formula, error) {
	return ParseDIMACS(strings.NewReader(s))
}

// ReadDIMACSFile parses a DIMACS CNF file from disk.
func ReadDIMACSFile(path string) (*Formula, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	return ParseDIMACS(fh)
}

// WriteDIMACS writes the formula in DIMACS format, with an optional list of
// comment lines emitted before the problem line.
func (f *Formula) WriteDIMACS(w io.Writer, comments ...string) error {
	bw := bufio.NewWriter(w)
	for _, c := range comments {
		if _, err := fmt.Fprintf(bw, "c %s\n", c); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", f.NumVars, len(f.Clauses)); err != nil {
		return err
	}
	for _, c := range f.Clauses {
		for _, l := range c {
			if _, err := fmt.Fprintf(bw, "%d ", int(l)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw, "0"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DIMACSString renders the formula as a DIMACS string.
func (f *Formula) DIMACSString(comments ...string) string {
	var b strings.Builder
	if err := f.WriteDIMACS(&b, comments...); err != nil {
		panic(err) // strings.Builder cannot fail
	}
	return b.String()
}

// WriteDIMACSFile writes the formula to a file.
func (f *Formula) WriteDIMACSFile(path string, comments ...string) error {
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.WriteDIMACS(fh, comments...); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}
