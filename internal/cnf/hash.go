package cnf

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// ContentHash returns the formula's content hash — the identity under
// which its compiled artifact is cached, and the key a session snapshot
// carries so a checkpoint can only restore onto the identical compiled
// problem. The hash covers the variable count and the exact clause/literal
// sequence (the transformation is order-sensitive, so two formulas that
// differ only in clause order are genuinely different compilation inputs),
// plus the declared projection: a formula's sampling set is part of its
// identity (sessions inherit it by default), so two inputs that differ
// only in their "c ind" lines must not share an identity. The projection
// suffix is only written when non-empty, which keeps every unprojected
// formula's hash unchanged and cannot collide — the clause section's
// length is fully determined by its leading counts.
func (f *Formula) ContentHash() string {
	h := sha256.New()
	var buf [binary.MaxVarintLen64]byte
	writeInt := func(v int64) {
		n := binary.PutVarint(buf[:], v)
		h.Write(buf[:n])
	}
	writeInt(int64(f.NumVars))
	writeInt(int64(len(f.Clauses)))
	for _, c := range f.Clauses {
		writeInt(int64(len(c)))
		for _, l := range c {
			writeInt(int64(l))
		}
	}
	if len(f.Projection) > 0 {
		writeInt(int64(len(f.Projection)))
		for _, v := range f.Projection {
			writeInt(int64(v))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
