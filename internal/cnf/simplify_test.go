package cnf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSimplifyUnitPropagation(t *testing.T) {
	f := New(3)
	f.AddClause(1)
	f.AddClause(-1, 2)
	f.AddClause(-2, 3)
	res, ok := f.Simplify()
	if !ok {
		t.Fatal("satisfiable formula reported unsat")
	}
	if res.UnitsFixed < 1 {
		t.Errorf("units fixed = %d want >= 1", res.UnitsFixed)
	}
	// All three variables end fixed true; formula must be three units.
	if !f.Sat([]bool{true, true, true}) {
		t.Error("all-true no longer a model")
	}
}

func TestSimplifyDetectsUnsat(t *testing.T) {
	f := New(1)
	f.AddClause(1)
	f.AddClause(-1)
	if _, ok := f.Simplify(); ok {
		t.Error("unsat not detected")
	}
}

func TestSimplifyRemovesTautologies(t *testing.T) {
	f := New(2)
	f.Clauses = append(f.Clauses, Clause{1, -1, 2})
	f.AddClause(1, 2)
	res, ok := f.Simplify()
	if !ok {
		t.Fatal("unexpected unsat")
	}
	if res.TautologiesRemoved != 1 {
		t.Errorf("tautologies removed = %d want 1", res.TautologiesRemoved)
	}
}

func TestSimplifySubsumption(t *testing.T) {
	f := New(3)
	f.AddClause(1, 2)
	f.AddClause(1, 2, 3) // subsumed by (1 2)
	res, ok := f.Simplify()
	if !ok {
		t.Fatal("unexpected unsat")
	}
	if res.Subsumed != 1 {
		t.Errorf("subsumed = %d want 1", res.Subsumed)
	}
}

func TestSimplifySelfSubsumption(t *testing.T) {
	f := New(3)
	f.AddClause(1, 2)
	f.AddClause(-1, 2, 3) // strengthens to (2 3)
	// Avoid pure-literal elimination swallowing everything by adding both
	// polarities of 2 and 3.
	f.AddClause(-2, -3, 1)
	res, ok := f.Simplify()
	if !ok {
		t.Fatal("unexpected unsat")
	}
	if res.Strengthened < 1 {
		t.Errorf("strengthened = %d want >= 1", res.Strengthened)
	}
}

func TestSimplifyPureLiteral(t *testing.T) {
	f := New(2)
	f.AddClause(1, 2)
	f.AddClause(1, -2)
	res, ok := f.Simplify()
	if !ok {
		t.Fatal("unexpected unsat")
	}
	if res.PureFixed < 1 {
		t.Errorf("pure fixed = %d want >= 1 (x1 occurs only positively)", res.PureFixed)
	}
	if !f.Sat([]bool{true, true}) {
		t.Error("x1=1 models lost")
	}
}

// TestSimplifyPreservesSatisfiabilityProperty: random formulas keep their
// SAT/UNSAT verdict through preprocessing (checked by brute force).
func TestSimplifyPreservesSatisfiabilityProperty(t *testing.T) {
	bruteSat := func(f *Formula) bool {
		for mask := 0; mask < 1<<uint(f.NumVars); mask++ {
			assign := make([]bool, f.NumVars)
			for i := range assign {
				assign[i] = mask&(1<<i) != 0
			}
			if f.Sat(assign) {
				return true
			}
		}
		return len(f.Clauses) == 0
	}
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nv := 2 + r.Intn(6)
		f := New(nv)
		for i := 0; i < 2+r.Intn(3*nv); i++ {
			k := 1 + r.Intn(3)
			c := make([]Lit, k)
			for j := range c {
				v := 1 + r.Intn(nv)
				if r.Intn(2) == 0 {
					c[j] = Lit(v)
				} else {
					c[j] = Lit(-v)
				}
			}
			f.AddClause(c...)
		}
		before := bruteSat(f)
		g := f.Clone()
		_, ok := g.Simplify()
		if !ok {
			return !before // reported unsat must mean actually unsat
		}
		after := bruteSat(g)
		return before == after
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSubsumesKinds(t *testing.T) {
	cases := []struct {
		a, b Clause
		want subsumeKind
	}{
		{Clause{1, 2}, Clause{1, 2, 3}, subsumeFull},
		{Clause{1, 2}, Clause{-1, 2, 3}, subsumeSelf},
		{Clause{1, 2}, Clause{1, 3}, subsumeNone},
		{Clause{1, 2, 3, 4}, Clause{1, 2}, subsumeNone},
		{Clause{1, -2}, Clause{-1, 2, 3}, subsumeNone}, // two flips
		{Clause{1}, Clause{1, 2}, subsumeFull},
		{Clause{-1}, Clause{1, 2}, subsumeSelf},
	}
	for i, c := range cases {
		if got := subsumes(c.a, c.b); got != c.want {
			t.Errorf("case %d: subsumes(%v,%v) = %v want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestStrengthen(t *testing.T) {
	got := strengthen(Clause{-1, 2}, Clause{1, 2, 3})
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("strengthen = %v want [2 3]", got)
	}
}

func TestSignatureSubsetCheck(t *testing.T) {
	a := Clause{1, 2}
	b := Clause{1, 2, 3}
	if signature(a)&^signature(b) != 0 {
		t.Error("subset clause has non-subset signature")
	}
}
