package cnf_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/benchgen"
	"repro/internal/cnf"
)

// FuzzParseDIMACS drives the untrusted-input parser with the benchgen
// corpus (real Tseitin CNFs of every benchmark family) plus hand-written
// edge cases. Properties: no panic; a formula accepted under limits
// actually honours them; an accepted formula survives a
// serialize-and-reparse round trip with identical shape.
func FuzzParseDIMACS(f *testing.F) {
	for _, in := range benchgen.SmallSuite() {
		f.Add(in.Formula.DIMACSString())
	}
	f.Add("p cnf 2 1\n1 -2 0\n")
	f.Add("c only a comment\n")
	f.Add("p cnf 0 0\n")
	f.Add("1 2 0 -1 -2 0")
	f.Add("p cnf 999999999 1\n1 0\n")
	f.Add("1 2")   // unterminated clause
	f.Add("p cnf") // truncated problem line
	f.Add("-0 0\n")
	f.Add("1 99999999999999999999 0\n") // literal overflows int
	// Projection ("c ind" / "p show") corpora: well-formed, malformed,
	// out-of-range, duplicated — the parser must error cleanly, never panic
	// or accept a silently wrong projection.
	f.Add("c ind 1 2 0\np cnf 2 1\n1 2 0\n")
	f.Add("p show 1 0\np cnf 2 1\n1 2 0\n")
	f.Add("c ind 1 2\np cnf 2 1\n1 2 0\n")     // missing terminator
	f.Add("c ind 1 0 2\np cnf 2 1\n1 2 0\n")   // tokens after terminator
	f.Add("c ind 1 1 0\np cnf 2 1\n1 2 0\n")   // duplicate
	f.Add("c ind 9 0\np cnf 2 1\n1 2 0\n")     // out of range
	f.Add("c ind -3 0\np cnf 3 1\n1 2 3 0\n")  // negative
	f.Add("c ind x 0\np cnf 2 1\n1 2 0\n")     // non-numeric
	f.Add("c ind 99999999999999999999 0\n1 0") // projection var overflows int
	f.Add("c ind 2 0\nc ind 1 0\np cnf 2 1\n1 2 0\n")
	f.Add("c indent is a comment\np cnf 2 1\n1 2 0\n")

	lim := cnf.ParseLimits{
		MaxBytes:    1 << 20,
		MaxVars:     1 << 16,
		MaxClauses:  1 << 16,
		MaxLiterals: 1 << 18,
	}
	f.Fuzz(func(t *testing.T, s string) {
		g, err := cnf.ParseDIMACSLimits(strings.NewReader(s), lim)
		if err != nil {
			if g != nil {
				t.Fatal("non-nil formula returned alongside an error")
			}
			return
		}
		if g.NumVars > lim.MaxVars {
			t.Fatalf("accepted %d vars past limit %d", g.NumVars, lim.MaxVars)
		}
		if len(g.Clauses) > lim.MaxClauses {
			t.Fatalf("accepted %d clauses past limit %d", len(g.Clauses), lim.MaxClauses)
		}
		st := g.Stats()
		if st.NumLits > lim.MaxLiterals {
			t.Fatalf("accepted %d literals past limit %d", st.NumLits, lim.MaxLiterals)
		}
		// An accepted projection is always valid: in range, duplicate-free.
		if err := cnf.ValidateProjection(g.NumVars, g.Projection); err != nil {
			t.Fatalf("accepted invalid projection: %v", err)
		}
		// Round trip: what we accepted must serialize to something the
		// unlimited parser reads back with the same shape.
		g2, err := cnf.ParseDIMACSString(g.DIMACSString())
		if err != nil {
			t.Fatalf("round trip parse: %v", err)
		}
		if st2 := g2.Stats(); st != st2 {
			t.Fatalf("round trip changed shape: %v -> %v", st, st2)
		}
		if len(g2.Projection) != len(g.Projection) {
			t.Fatalf("round trip changed projection: %v -> %v", g.Projection, g2.Projection)
		}
		for i := range g.Projection {
			if g2.Projection[i] != g.Projection[i] {
				t.Fatalf("round trip changed projection: %v -> %v", g.Projection, g2.Projection)
			}
		}
		// The limit error class must be stable: reparsing with a byte limit
		// below the serialized size yields ErrLimit, not a parse error.
		text := g.DIMACSString()
		if len(text) > 8 {
			if _, err := cnf.ParseDIMACSLimits(strings.NewReader(text), cnf.ParseLimits{MaxBytes: 8}); !errors.Is(err, cnf.ErrLimit) {
				t.Fatalf("byte-limited reparse: got %v, want ErrLimit", err)
			}
		}
	})
}
