package cnf_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cnf"
)

func TestParseProjectionCInd(t *testing.T) {
	f, err := cnf.ParseDIMACSString("c ind 1 3 5 0\np cnf 6 2\n1 2 0\n-3 4 0\n")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 3, 5}
	if len(f.Projection) != len(want) {
		t.Fatalf("projection %v, want %v", f.Projection, want)
	}
	for i, v := range want {
		if f.Projection[i] != v {
			t.Fatalf("projection %v, want %v", f.Projection, want)
		}
	}
}

func TestParseProjectionPShow(t *testing.T) {
	f, err := cnf.ParseDIMACSString("p cnf 4 1\n1 2 0\np show 2 4 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Projection) != 2 || f.Projection[0] != 2 || f.Projection[1] != 4 {
		t.Fatalf("projection %v, want [2 4]", f.Projection)
	}
}

func TestParseProjectionMultiLine(t *testing.T) {
	f, err := cnf.ParseDIMACSString("c ind 1 2 0\nc ind 3 0\np cnf 4 1\n1 -2 3 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Projection) != 3 {
		t.Fatalf("projection %v, want [1 2 3]", f.Projection)
	}
}

func TestParseProjectionErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"duplicate same line", "c ind 1 1 0\np cnf 2 1\n1 2 0\n"},
		{"duplicate across lines", "c ind 1 0\nc ind 1 0\np cnf 2 1\n1 2 0\n"},
		{"duplicate across conventions", "c ind 2 0\np show 2 0\np cnf 2 1\n1 2 0\n"},
		{"out of range", "c ind 7 0\np cnf 2 1\n1 2 0\n"},
		{"negative", "c ind -1 0\np cnf 2 1\n1 2 0\n"},
		{"unterminated", "c ind 1 2\np cnf 2 1\n1 2 0\n"},
		{"tokens after terminator", "c ind 1 0 2\np cnf 2 1\n1 2 0\n"},
		{"non-numeric", "c ind one 0\np cnf 2 1\n1 2 0\n"},
		{"show unterminated", "p show 1\np cnf 2 1\n1 2 0\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := cnf.ParseDIMACSString(tc.in); err == nil {
				t.Fatalf("accepted %q", tc.in)
			}
		})
	}
}

func TestPlainCommentsStayComments(t *testing.T) {
	f, err := cnf.ParseDIMACSString("c industrial instance\nc indent 3\np cnf 2 1\n1 2 0\n")
	if err == nil {
		if len(f.Projection) != 0 {
			t.Fatalf("comment parsed as projection: %v", f.Projection)
		}
		return
	}
	t.Fatalf("comment lines rejected: %v", err)
}

func TestProjectionRoundTrip(t *testing.T) {
	f, err := cnf.ParseDIMACSString("c ind 2 1 4 0\np cnf 4 2\n1 -2 0\n3 4 0\n")
	if err != nil {
		t.Fatal(err)
	}
	g, err := cnf.ParseDIMACSString(f.DIMACSString())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Projection) != 3 || g.Projection[0] != 2 || g.Projection[1] != 1 || g.Projection[2] != 4 {
		t.Fatalf("round-tripped projection %v, want [2 1 4] (declared order preserved)", g.Projection)
	}
	h := f.Clone()
	h.Projection[0] = 3
	if f.Projection[0] != 2 {
		t.Fatal("Clone shares the projection slice")
	}
}

func TestProjectionLimitChecked(t *testing.T) {
	in := "c ind 70000 0\np cnf 70000 1\n1 2 0\n"
	_, err := cnf.ParseDIMACSLimits(strings.NewReader(in), cnf.ParseLimits{MaxVars: 1 << 16})
	if !errors.Is(err, cnf.ErrLimit) {
		t.Fatalf("projection variable past MaxVars: got %v, want ErrLimit", err)
	}
}

func TestValidateProjection(t *testing.T) {
	if err := cnf.ValidateProjection(5, []int{1, 5, 3}); err != nil {
		t.Fatal(err)
	}
	if err := cnf.ValidateProjection(5, []int{1, 6}); err == nil {
		t.Fatal("accepted out-of-range variable")
	}
	if err := cnf.ValidateProjection(5, []int{2, 2}); err == nil {
		t.Fatal("accepted duplicate variable")
	}
	if err := cnf.ValidateProjection(5, nil); err != nil {
		t.Fatalf("nil projection must validate: %v", err)
	}
}
