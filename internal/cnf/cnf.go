// Package cnf provides conjunctive-normal-form formulas: literals, clauses,
// DIMACS parsing and writing, assignment evaluation, unit propagation, and
// the bit-wise operation counting used by the paper's Fig. 4 ablation
// ("2-input gate equivalents").
package cnf

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Lit is a DIMACS-style literal: +v for variable v, -v for its negation.
// Zero is not a valid literal.
type Lit int

// Var returns the variable index of l (always positive).
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Positive reports whether l is a positive literal.
func (l Lit) Positive() bool { return l > 0 }

// Neg returns the negation of l.
func (l Lit) Neg() Lit { return -l }

// Sat reports whether l is satisfied by value (the value of its variable).
func (l Lit) Sat(value bool) bool { return (l > 0) == value }

// Clause is a disjunction of literals.
type Clause []Lit

// Sat reports whether the clause is satisfied by the dense assignment,
// where assign[v-1] is the value of variable v.
func (c Clause) Sat(assign []bool) bool {
	for _, l := range c {
		if l.Sat(assign[l.Var()-1]) {
			return true
		}
	}
	return false
}

// Contains reports whether the clause contains l.
func (c Clause) Contains(l Lit) bool {
	for _, x := range c {
		if x == l {
			return true
		}
	}
	return false
}

// Clone returns a copy of the clause.
func (c Clause) Clone() Clause { return append(Clause(nil), c...) }

// Normalize sorts literals by variable and removes duplicates. It returns
// (nil, true) when the clause is a tautology (contains l and ¬l).
func (c Clause) Normalize() (Clause, bool) {
	out := c.Clone()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Var() != out[j].Var() {
			return out[i].Var() < out[j].Var()
		}
		return out[i] < out[j]
	})
	w := 0
	for i := 0; i < len(out); i++ {
		if w > 0 && out[w-1] == out[i] {
			continue
		}
		if w > 0 && out[w-1].Var() == out[i].Var() {
			return nil, true // v and ¬v
		}
		out[w] = out[i]
		w++
	}
	return out[:w], false
}

// Formula is a CNF formula: a conjunction of clauses over NumVars variables
// numbered 1..NumVars.
type Formula struct {
	NumVars int
	Clauses []Clause
	// Projection is the declared sampling set ("c ind"/"p show" lines in
	// DIMACS): solution identity is the assignment restricted to these
	// variables, in declared order. Empty means no projection — every
	// variable counts. Parsing guarantees the list is duplicate-free and
	// within 1..NumVars; programmatic writers should run
	// ValidateProjection before handing the formula to samplers.
	Projection []int
}

// New returns an empty formula over n variables.
func New(n int) *Formula { return &Formula{NumVars: n} }

// AddClause appends a clause, growing NumVars as needed. It keeps the
// literal order given by the caller (Algorithm 1 is order-sensitive).
func (f *Formula) AddClause(lits ...Lit) {
	c := make(Clause, len(lits))
	copy(c, lits)
	for _, l := range c {
		if l == 0 {
			panic("cnf: zero literal in clause")
		}
		if v := l.Var(); v > f.NumVars {
			f.NumVars = v
		}
	}
	f.Clauses = append(f.Clauses, c)
}

// NumClauses returns the number of clauses.
func (f *Formula) NumClauses() int { return len(f.Clauses) }

// Sat reports whether the dense assignment satisfies every clause.
// assign[v-1] is the value of variable v; len(assign) must be >= NumVars.
func (f *Formula) Sat(assign []bool) bool {
	for _, c := range f.Clauses {
		if !c.Sat(assign) {
			return false
		}
	}
	return true
}

// FirstUnsat returns the index of the first clause falsified by assign,
// or -1 when the assignment is a model.
func (f *Formula) FirstUnsat(assign []bool) int {
	for i, c := range f.Clauses {
		if !c.Sat(assign) {
			return i
		}
	}
	return -1
}

// Clone returns a deep copy of the formula.
func (f *Formula) Clone() *Formula {
	g := &Formula{NumVars: f.NumVars, Clauses: make([]Clause, len(f.Clauses))}
	for i, c := range f.Clauses {
		g.Clauses[i] = c.Clone()
	}
	if f.Projection != nil {
		g.Projection = append([]int(nil), f.Projection...)
	}
	return g
}

// ParseProjectionList reads a comma-separated projection variable list —
// the spelling shared by satsample's -project flag and satserved's
// ?project= parameter. An empty (or all-whitespace) spec is no projection
// (nil, nil); a spec with tokens but no variables is an error, so a typo
// like "," cannot silently mean "sample everything". Range and duplicate
// checks are ValidateProjection's job once the variable count is known.
func ParseProjectionList(spec string) ([]int, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []int
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		v, err := strconv.Atoi(tok)
		if err != nil {
			return nil, fmt.Errorf("cnf: bad projection variable %q", tok)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cnf: projection list %q names no variables", spec)
	}
	return out, nil
}

// ValidateProjection checks a projection list against the formula: every
// variable must be in 1..NumVars and appear at most once. It is the same
// validation ParseDIMACS applies to "c ind"/"p show" lines, exposed for
// callers that attach projections programmatically (e.g. from a request
// parameter).
func ValidateProjection(numVars int, projection []int) error {
	seen := make(map[int]bool, len(projection))
	for _, v := range projection {
		if v < 1 || v > numVars {
			return fmt.Errorf("cnf: projection variable %d out of range 1..%d", v, numVars)
		}
		if seen[v] {
			return fmt.Errorf("cnf: duplicate projection variable %d", v)
		}
		seen[v] = true
	}
	return nil
}

// OpCount2 returns the number of bit-wise operations in the formula in
// 2-input gate equivalents: a k-literal clause costs k-1 two-input ORs,
// and conjoining m clauses costs m-1 two-input ANDs. Literal negations are
// free, matching the paper's gate-equivalent accounting.
func (f *Formula) OpCount2() int {
	if len(f.Clauses) == 0 {
		return 0
	}
	ops := len(f.Clauses) - 1
	for _, c := range f.Clauses {
		if len(c) > 1 {
			ops += len(c) - 1
		}
	}
	return ops
}

// Stats summarises a formula for reporting.
type Stats struct {
	NumVars    int
	NumClauses int
	NumLits    int
	MaxClause  int
}

// Stats returns summary statistics.
func (f *Formula) Stats() Stats {
	s := Stats{NumVars: f.NumVars, NumClauses: len(f.Clauses)}
	for _, c := range f.Clauses {
		s.NumLits += len(c)
		if len(c) > s.MaxClause {
			s.MaxClause = len(c)
		}
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("vars=%d clauses=%d lits=%d maxclause=%d",
		s.NumVars, s.NumClauses, s.NumLits, s.MaxClause)
}

// UnitPropagate applies unit propagation to a copy of the partial
// assignment. values maps variable -> assigned value for assigned variables.
// It returns the extended assignment and conflict=true when propagation
// derives a contradiction.
func (f *Formula) UnitPropagate(values map[int]bool) (extended map[int]bool, conflict bool) {
	ext := make(map[int]bool, len(values))
	for k, v := range values {
		ext[k] = v
	}
	for {
		progress := false
		for _, c := range f.Clauses {
			var unassigned []Lit
			sat := false
			for _, l := range c {
				if v, ok := ext[l.Var()]; ok {
					if l.Sat(v) {
						sat = true
						break
					}
				} else {
					unassigned = append(unassigned, l)
				}
			}
			if sat {
				continue
			}
			switch len(unassigned) {
			case 0:
				return ext, true
			case 1:
				l := unassigned[0]
				ext[l.Var()] = l.Positive()
				progress = true
			}
		}
		if !progress {
			return ext, false
		}
	}
}

// Project returns the sub-assignment of assign restricted to vars.
func Project(assign []bool, vars []int) []bool {
	out := make([]bool, len(vars))
	for i, v := range vars {
		out[i] = assign[v-1]
	}
	return out
}
