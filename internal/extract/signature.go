package extract

import (
	"repro/internal/cnf"
	"repro/internal/logic"
)

// Signature-based gate recognition: the paper's §III-A observes that the
// Tseitin clause groups of primary operators (Eqs. 1–4) can be recovered
// by direct pattern matching before falling back to the general
// derive-and-check-complement procedure. This fast path recognizes
// buffers/inverters, n-ary AND/OR/NAND/NOR groups and 2-input XOR/XNOR
// groups structurally, avoiding expression minimization for the vast
// majority of windows on Tseitin-encoded instances. Recognition failures
// fall through to the general algorithm, so the fast path is purely an
// accelerator — both paths are covered by the same equisatisfiability
// tests.

// recognizeSignature tries to match the clauses of the window containing
// ±v against a primary-operator signature with output v. It returns the
// recovered expression on success.
func recognizeSignature(window []cnf.Clause, v int) (*logic.Expr, bool) {
	var withV []cnf.Clause
	for _, c := range window {
		for _, l := range c {
			if l.Var() == v {
				withV = append(withV, c)
				break
			}
		}
	}
	if len(withV) < 2 {
		return nil, false
	}
	if e, ok := matchBufInv(withV, v); ok {
		return e, true
	}
	if e, ok := matchAndOr(withV, v); ok {
		return e, true
	}
	if e, ok := matchXor2(withV, v); ok {
		return e, true
	}
	return nil, false
}

// matchBufInv recognizes Eq. (1)-style pairs:
// (v ∨ ¬w)(¬v ∨ w) → v = w;  (v ∨ w)(¬v ∨ ¬w) → v = ¬w.
func matchBufInv(cs []cnf.Clause, v int) (*logic.Expr, bool) {
	if len(cs) != 2 || len(cs[0]) != 2 || len(cs[1]) != 2 {
		return nil, false
	}
	other := func(c cnf.Clause) (cnf.Lit, cnf.Lit) {
		if c[0].Var() == v {
			return c[0], c[1]
		}
		return c[1], c[0]
	}
	v0, w0 := other(cs[0])
	v1, w1 := other(cs[1])
	if w0.Var() != w1.Var() || w0.Var() == v {
		return nil, false
	}
	// Need opposite polarities of v across the two clauses and opposite
	// polarities of w (buffer) or same... enumerate: clause (v-lit, w-lit)
	// pairs encode v = w iff each clause is (v ∨ ¬w) / (¬v ∨ w).
	if v0.Positive() == v1.Positive() {
		return nil, false
	}
	// Normalize so v0 is the positive-v clause.
	if !v0.Positive() {
		v0, w0, v1, w1 = v1, w1, v0, w0
	}
	_ = v1
	switch {
	case !w0.Positive() && w1.Positive():
		return logic.V(w0.Var()), true // v = w
	case w0.Positive() && !w1.Positive():
		return logic.Not(logic.V(w0.Var())), true // v = ¬w
	}
	return nil, false
}

// matchAndOr recognizes Eq. (2)/(3)-style groups with output v:
//
//	OR:  (¬v ∨ l1 … ln) ∧ ⋀i (v ∨ ¬li)   → v = l1 ∨ … ∨ ln
//	AND: (v ∨ ¬l1 … ¬ln) ∧ ⋀i (¬v ∨ li)  → v = l1 ∧ … ∧ ln
//
// where li are arbitrary literals (inputs may be negated).
func matchAndOr(cs []cnf.Clause, v int) (*logic.Expr, bool) {
	// Find the single wide clause and the binary side clauses.
	var wide cnf.Clause
	var bins []cnf.Clause
	for _, c := range cs {
		switch {
		case len(c) == 2:
			bins = append(bins, c)
		case len(c) >= 2 && wide == nil:
			wide = c
		default:
			return nil, false
		}
	}
	if wide == nil || len(bins) != len(wide)-1 {
		// A 2-input gate has a ternary wide clause and 2 binaries; an
		// n-input one has n binaries. A wide==binary (n=1) case is the
		// buffer pattern handled elsewhere.
		return nil, false
	}
	var vLit cnf.Lit
	rest := map[cnf.Lit]bool{}
	for _, l := range wide {
		if l.Var() == v {
			vLit = l
		} else {
			rest[l] = true
		}
	}
	if vLit == 0 || len(rest) != len(wide)-1 {
		return nil, false
	}
	// Each binary clause must be (¬vLit ∨ ¬li) for some li in rest.
	matched := map[cnf.Lit]bool{}
	for _, c := range bins {
		var bv, bw cnf.Lit
		if c[0].Var() == v {
			bv, bw = c[0], c[1]
		} else if c[1].Var() == v {
			bv, bw = c[1], c[0]
		} else {
			return nil, false
		}
		if bv != -vLit {
			return nil, false
		}
		if !rest[-bw] || matched[-bw] {
			return nil, false
		}
		matched[-bw] = true
	}
	// vLit negative → OR of rest literals; positive → AND of their
	// negations.
	var lits []*logic.Expr
	for l := range rest {
		lits = append(lits, logic.Lit(l.Var(), l.Positive()))
	}
	if !vLit.Positive() {
		return logic.Or(lits...), true
	}
	neg := make([]*logic.Expr, len(lits))
	for i, e := range lits {
		neg[i] = logic.Not(e)
	}
	return logic.And(neg...), true
}

// matchXor2 recognizes the 2-input XOR/XNOR group (Eq. 4 with n=2): four
// ternary clauses over {v, a, b} whose conjunction forces v = a⊕b or
// v = ¬(a⊕b), decided by an 8-row truth check.
func matchXor2(cs []cnf.Clause, v int) (*logic.Expr, bool) {
	if len(cs) != 4 {
		return nil, false
	}
	vars := map[int]bool{}
	for _, c := range cs {
		if len(c) != 3 {
			return nil, false
		}
		for _, l := range c {
			vars[l.Var()] = true
		}
	}
	if len(vars) != 3 || !vars[v] {
		return nil, false
	}
	var others []int
	for w := range vars {
		if w != v {
			others = append(others, w)
		}
	}
	a, b := others[0], others[1]
	// Truth check: conjunction of the 4 clauses equals (v == a⊕b) or its
	// complement.
	matchesXor, matchesXnor := true, true
	for mask := 0; mask < 8; mask++ {
		val := map[int]bool{v: mask&1 != 0, a: mask&2 != 0, b: mask&4 != 0}
		sat := true
		for _, c := range cs {
			cSat := false
			for _, l := range c {
				if l.Sat(val[l.Var()]) {
					cSat = true
					break
				}
			}
			if !cSat {
				sat = false
				break
			}
		}
		xorHolds := val[v] == (val[a] != val[b])
		if sat != xorHolds {
			matchesXor = false
		}
		if sat != !xorHolds {
			matchesXnor = false
		}
	}
	switch {
	case matchesXor:
		return logic.Xor(logic.V(a), logic.V(b)), true
	case matchesXnor:
		return logic.Xnor(logic.V(a), logic.V(b)), true
	}
	return nil, false
}
