package extract

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
	"repro/internal/logic"
)

func TestMatchBufInv(t *testing.T) {
	// (¬1 ∨ 2)(1 ∨ ¬2): candidate 1 → x1 = x2.
	buf := []cnf.Clause{{-1, 2}, {1, -2}}
	e, ok := matchBufInv(buf, 1)
	if !ok || logic.Key(e) != logic.Key(logic.V(2)) {
		t.Errorf("buffer: got %v, %v", e, ok)
	}
	// (¬1 ∨ ¬2)(1 ∨ 2): x1 = ¬x2.
	inv := []cnf.Clause{{-1, -2}, {1, 2}}
	e, ok = matchBufInv(inv, 1)
	if !ok || logic.Key(e) != logic.Key(logic.Not(logic.V(2))) {
		t.Errorf("inverter: got %v, %v", e, ok)
	}
	// Same polarity of v twice: no match.
	if _, ok := matchBufInv([]cnf.Clause{{1, 2}, {1, -2}}, 1); ok {
		t.Error("bad pair matched")
	}
}

func TestMatchAndOrGroups(t *testing.T) {
	// OR: f=4, inputs 1,2,3 → (¬4 ∨ 1 ∨ 2 ∨ 3)(4 ∨ ¬1)(4 ∨ ¬2)(4 ∨ ¬3).
	or := []cnf.Clause{{-4, 1, 2, 3}, {4, -1}, {4, -2}, {4, -3}}
	e, ok := matchAndOr(or, 4)
	if !ok || !logic.Equivalent(e, logic.Or(logic.V(1), logic.V(2), logic.V(3))) {
		t.Errorf("OR group: got %v, %v", e, ok)
	}
	// AND: f=4 → (4 ∨ ¬1 ∨ ¬2 ∨ ¬3)(¬4 ∨ 1)(¬4 ∨ 2)(¬4 ∨ 3).
	and := []cnf.Clause{{4, -1, -2, -3}, {-4, 1}, {-4, 2}, {-4, 3}}
	e, ok = matchAndOr(and, 4)
	if !ok || !logic.Equivalent(e, logic.And(logic.V(1), logic.V(2), logic.V(3))) {
		t.Errorf("AND group: got %v, %v", e, ok)
	}
	// OR with a negated input literal: f = ¬1 ∨ 2.
	orn := []cnf.Clause{{-4, -1, 2}, {4, 1}, {4, -2}}
	e, ok = matchAndOr(orn, 4)
	if !ok || !logic.Equivalent(e, logic.Or(logic.Not(logic.V(1)), logic.V(2))) {
		t.Errorf("OR with negated literal: got %v, %v", e, ok)
	}
	// Wrong binary polarity: no match.
	bad := []cnf.Clause{{-4, 1, 2}, {4, 1}, {4, -2}}
	if _, ok := matchAndOr(bad, 4); ok {
		t.Error("corrupted group matched")
	}
}

func TestMatchXor2(t *testing.T) {
	// v=3 = x1 ⊕ x2 (Eq. 4 signature).
	xor := []cnf.Clause{{-3, 1, 2}, {-3, -1, -2}, {3, -1, 2}, {3, 1, -2}}
	e, ok := matchXor2(xor, 3)
	if !ok || !logic.Equivalent(e, logic.Xor(logic.V(1), logic.V(2))) {
		t.Errorf("XOR: got %v, %v", e, ok)
	}
	// v=3 = XNOR(x1,x2).
	xnor := []cnf.Clause{{3, 1, 2}, {3, -1, -2}, {-3, -1, 2}, {-3, 1, -2}}
	e, ok = matchXor2(xnor, 3)
	if !ok || !logic.Equivalent(e, logic.Xnor(logic.V(1), logic.V(2))) {
		t.Errorf("XNOR: got %v, %v", e, ok)
	}
	// A clause set that is not a parity function: no match.
	notParity := []cnf.Clause{{-3, 1, 2}, {-3, -1, -2}, {3, -1, 2}, {3, 1, 2}}
	if _, ok := matchXor2(notParity, 3); ok {
		t.Error("non-parity clauses matched as XOR")
	}
}

func TestSignatureHitsOnTseitinInstances(t *testing.T) {
	// A Tseitin-encoded random circuit should resolve almost entirely
	// through the signature fast path.
	r := rand.New(rand.NewSource(4))
	c := randomCircuit(r, 6, 30)
	enc := c.Tseitin()
	res, err := Transform(enc.Formula)
	if err != nil {
		t.Fatal(err)
	}
	if res.SignatureHits == 0 {
		t.Error("no signature hits on a pure Tseitin instance")
	}
	if res.SignatureHits < res.Windows/2 {
		t.Errorf("signature hits %d out of %d windows — fast path barely firing",
			res.SignatureHits, res.Windows)
	}
}

// TestSignaturePathAgreesWithGenericPath: disabling the fast path (by
// testing the generic derivation directly on signature windows) must give
// semantically identical bindings.
func TestSignaturePathAgreesWithGenericPath(t *testing.T) {
	groups := [][]cnf.Clause{
		{{-4, 1, 2, 3}, {4, -1}, {4, -2}, {4, -3}},
		{{4, -1, -2, -3}, {-4, 1}, {-4, 2}, {-4, 3}},
		{{-3, 1, 2}, {-3, -1, -2}, {3, -1, 2}, {3, 1, -2}},
		{{-1, 2}, {1, -2}},
	}
	for gi, cs := range groups {
		// Output variable is the highest-numbered one by construction.
		v := 0
		for _, c := range cs {
			for _, l := range c {
				if l.Var() > v {
					v = l.Var()
				}
			}
		}
		sig, okSig := recognizeSignature(cs, v)
		if !okSig {
			t.Fatalf("group %d: signature not recognized", gi)
		}
		f, g, ok := deriveExpressions(cs, v)
		if !ok || !complementary(f, g) {
			t.Fatalf("group %d: generic path did not resolve", gi)
		}
		if !logic.Equivalent(sig, f) {
			t.Errorf("group %d: signature %v != generic %v", gi, sig, f)
		}
	}
}

// TestRoundTripStillHoldsWithFastPath re-runs the bijection check (the
// fast path must not change extraction semantics).
func TestRoundTripStillHoldsWithFastPath(t *testing.T) {
	r := rand.New(rand.NewSource(606))
	for trial := 0; trial < 25; trial++ {
		c := randomCircuit(r, 3+r.Intn(3), 5+r.Intn(8))
		enc := c.Tseitin()
		res, err := Transform(enc.Formula)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(res.Circuit.Inputs) > 14 {
			continue
		}
		checkBijection(t, enc.Formula, res)
	}
}
