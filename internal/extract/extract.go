// Package extract implements the paper's transformation algorithm
// (Algorithm 1): it converts a CNF — typically the Tseitin encoding of some
// multi-level circuit — back into an equisatisfiable multi-level,
// multi-output Boolean function, classifying every CNF variable as a primary
// input, an intermediate variable, or a primary output.
//
// The clause window scan follows the paper: clauses are read in order into
// a window; for each unclassified variable v in the window, the Boolean
// expression f for v is derived from the window clauses containing ¬v and
// the expression g for ¬v from those containing v; when f == ¬g the window
// encodes "v = f". Constant f makes v a primary output; otherwise v becomes
// an intermediate variable and the support of f joins the primary inputs.
//
// Two engineering refinements over the paper's pseudo-code (both strictly
// constraint-preserving, documented in DESIGN.md):
//
//  1. On resolution, only the clauses containing v are discarded. Those
//     clauses are exactly equivalent to v = f (given complementarity), so
//     unrelated clauses that happen to share the window are never dropped.
//  2. The under-specified fallback (window variables disjoint from all
//     later clauses) is triggered by an exact lookahead table, and the
//     window conjunction becomes an auxiliary output constrained to 1.
package extract

import (
	"fmt"
	"time"

	"repro/internal/bdd"
	"repro/internal/bitblast"
	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/logic"
)

// Kind classifies a CNF variable in the extracted function.
type Kind uint8

// Variable classifications.
const (
	PrimaryInput Kind = iota
	Intermediate
	PrimaryOutput
)

func (k Kind) String() string {
	switch k {
	case PrimaryInput:
		return "PI"
	case Intermediate:
		return "IV"
	case PrimaryOutput:
		return "PO"
	}
	return "?"
}

// Binding records one recovered definition "Var = Expr".
type Binding struct {
	Var  int // CNF variable; 0 for auxiliary (fallback) outputs
	Expr *logic.Expr
}

// Result is the outcome of a transformation.
type Result struct {
	// Circuit is the extracted multi-level, multi-output function. Its
	// inputs are the primary-input CNF variables (in classification order)
	// and its outputs carry the constant constraints.
	Circuit *circuit.Circuit
	// PrimaryInputs, Intermediates, PrimaryOutputs list CNF variables by
	// classification, in discovery order.
	PrimaryInputs  []int
	Intermediates  []int
	PrimaryOutputs []int
	// Bindings lists the recovered expressions in recovery order.
	Bindings []Binding
	// NodeOf maps a CNF variable to its circuit node.
	NodeOf map[int]circuit.NodeID
	// OutputSources records, for each Circuit.Outputs entry (same order),
	// the indices of the original CNF clauses whose constraints produced
	// that output: the clauses consumed by a primary-output resolution, or
	// the whole window of a fallback. It is the provenance table behind
	// clause-weighted GD — per-clause weights aggregate onto the engine
	// outputs they constrain. Clauses consumed by intermediate resolutions
	// feed no output directly; their weights are absorbed structurally.
	OutputSources [][]int
	// TransformTime is the wall-clock cost of the transformation (the
	// paper's Fig. 4 right).
	TransformTime time.Duration
	// Windows counts resolved clause windows; Fallbacks counts windows
	// flushed through the under-specified path; SignatureHits counts
	// windows resolved by the Eq. 1–4 pattern-matching fast path rather
	// than the general derive-and-complement procedure.
	Windows       int
	Fallbacks     int
	SignatureHits int
}

// InputVars returns the primary-input CNF variables in circuit input order.
func (r *Result) InputVars() []int { return append([]int(nil), r.PrimaryInputs...) }

// GateHistogram counts the recovered circuit's nodes by gate type, keyed
// by the gate name (INPUT/CONST/BUF/NOT/AND/OR/…).
func (r *Result) GateHistogram() map[string]int {
	h := map[string]int{}
	for _, nd := range r.Circuit.Nodes {
		h[nd.Type.String()]++
	}
	return h
}

// ProjectionNodes maps projection variables to circuit nodes for the
// bit-parallel projected-signature path (bitblast.Eval.VerifyProject):
// out[k] is the node of vars[k], or -1 when the variable never received a
// node and defaults to false, matching AssignmentFromInputs.
func (r *Result) ProjectionNodes(vars []int) []int32 {
	out := make([]int32, len(vars))
	for i, v := range vars {
		if id, ok := r.NodeOf[v]; ok {
			out[i] = int32(id)
		} else {
			out[i] = -1
		}
	}
	return out
}

// AssignmentFromInputs evaluates the extracted circuit under the given
// primary-input values (in circuit input order) and returns a dense CNF
// assignment (assign[v-1] = value of CNF variable v) covering every
// variable that received a node.
func (r *Result) AssignmentFromInputs(numVars int, inputs []bool) []bool {
	vals := r.Circuit.Eval(inputs)
	assign := make([]bool, numVars)
	for v, id := range r.NodeOf {
		assign[v-1] = vals[id]
	}
	return assign
}

// Verifier compiles a bit-parallel checker for this transformation: it
// reconstructs the full CNF assignment of 64 candidate primary-input rows
// per uint64 word sweep and reports which rows satisfy f — the packed
// analogue of AssignmentFromInputs + Formula.Sat, sharing the same
// nodeless-variables-default-false convention through NodeOf.
func (r *Result) Verifier(f *cnf.Formula) *bitblast.Program {
	return bitblast.New(r.Circuit, r.NodeOf, f)
}

// Transform runs Algorithm 1 on f.
func Transform(f *cnf.Formula) (*Result, error) {
	start := time.Now()
	t := &transformer{
		res: &Result{
			Circuit: circuit.NewCircuit(),
			NodeOf:  map[int]circuit.NodeID{},
		},
		kind:    map[int]Kind{},
		classed: map[int]bool{},
	}
	// Lookahead: last clause index in which each variable occurs.
	lastUse := map[int]int{}
	for i, c := range f.Clauses {
		for _, l := range c {
			lastUse[l.Var()] = i
		}
	}

	var window []cnf.Clause
	var winIdx []int // original clause index of each window clause (provenance)
	for i, c := range f.Clauses {
		if len(c) == 0 {
			return nil, fmt.Errorf("extract: clause %d is empty (formula unsatisfiable)", i)
		}
		window = append(window, c)
		winIdx = append(winIdx, i)
		// Try resolutions until the window is stable.
		for {
			v, expr, ok := t.tryResolve(window)
			if !ok {
				break
			}
			window, winIdx = t.commit(window, winIdx, v, expr)
			t.res.Windows++
			if len(window) == 0 {
				break
			}
		}
		// Under-specified flush: no window variable occurs later.
		if len(window) > 0 {
			flush := true
			for _, wc := range window {
				for _, l := range wc {
					if lastUse[l.Var()] > i {
						flush = false
						break
					}
				}
				if !flush {
					break
				}
			}
			if flush {
				t.fallback(window, winIdx)
				window, winIdx = nil, nil
			}
		}
	}
	if len(window) > 0 {
		t.fallback(window, winIdx)
	}
	t.res.TransformTime = time.Since(start)
	return t.res, nil
}

type transformer struct {
	res     *Result
	kind    map[int]Kind
	classed map[int]bool // variable has been classified
}

// nodeFor returns the circuit node for CNF variable v, creating a primary
// input node (and classifying v as PI) when it has none.
func (t *transformer) nodeFor(v int) circuit.NodeID {
	if id, ok := t.res.NodeOf[v]; ok {
		return id
	}
	id := t.res.Circuit.AddInput(fmt.Sprintf("x%d", v))
	t.res.Circuit.Nodes[id].Var = v
	t.res.NodeOf[v] = id
	t.kind[v] = PrimaryInput
	t.classed[v] = true
	t.res.PrimaryInputs = append(t.res.PrimaryInputs, v)
	return id
}

// tryResolve scans the window's variables in order of first appearance and
// returns the first (v, f) with f == ¬g per the paper's test.
func (t *transformer) tryResolve(window []cnf.Clause) (int, *logic.Expr, bool) {
	seen := map[int]bool{}
	for _, c := range window {
		for _, l := range c {
			v := l.Var()
			if seen[v] || t.classed[v] {
				continue
			}
			seen[v] = true
			// Fast path: Eq. 1–4 signature pattern matching.
			if expr, ok := recognizeSignature(window, v); ok {
				t.res.SignatureHits++
				return v, expr, true
			}
			fExpr, gExpr, hasBoth := deriveExpressions(window, v)
			if !hasBoth {
				continue
			}
			if complementary(fExpr, gExpr) {
				return v, fExpr, true
			}
		}
	}
	return 0, nil, false
}

// deriveExpressions builds the candidate expression for v (from clauses
// containing ¬v, each contributing the OR of its remaining literals) and
// for ¬v (from clauses containing v). hasBoth is false when v occurs in
// only one polarity in a window that still has other variables — such a v
// can never pass the complement test unless one side is empty by design
// (the unit-output case is covered because an empty side derives a
// constant).
func deriveExpressions(window []cnf.Clause, v int) (fExpr, gExpr *logic.Expr, hasBoth bool) {
	var fTerms, gTerms []*logic.Expr
	pos, neg := 0, 0
	for _, c := range window {
		hasPos, hasNeg := false, false
		for _, l := range c {
			if l.Var() == v {
				if l.Positive() {
					hasPos = true
				} else {
					hasNeg = true
				}
			}
		}
		rest := func() *logic.Expr {
			var lits []*logic.Expr
			for _, l := range c {
				if l.Var() == v {
					continue
				}
				lits = append(lits, logic.Lit(l.Var(), l.Positive()))
			}
			return logic.Or(lits...)
		}
		if hasNeg {
			neg++
			fTerms = append(fTerms, rest())
		}
		if hasPos {
			pos++
			gTerms = append(gTerms, rest())
		}
	}
	if pos == 0 && neg == 0 {
		return nil, nil, false
	}
	return logic.And(fTerms...), logic.And(gTerms...), true
}

// complementary decides f == ¬g, via truth tables for small supports and
// BDDs otherwise.
func complementary(f, g *logic.Expr) bool {
	supF, supG := f.Support(), g.Support()
	if len(supF) <= 14 && len(supG) <= 14 {
		return logic.Complementary(f, g)
	}
	m := bdd.New()
	return m.Complementary(m.FromExpr(f), m.FromExpr(g))
}

// commit applies a successful resolution: record the binding, classify v,
// instantiate the expression as gates, and drop exactly the clauses
// containing v from the window. winIdx carries each window clause's
// original index; consumed clauses become the provenance of a constant
// (primary-output) resolution's circuit output.
func (t *transformer) commit(window []cnf.Clause, winIdx []int, v int, expr *logic.Expr) ([]cnf.Clause, []int) {
	expr = logic.Simplify(expr)
	t.res.Bindings = append(t.res.Bindings, Binding{Var: v, Expr: expr})

	// Partition first: clauses containing v are exactly the ones this
	// resolution consumes (in-place compaction is safe — the write index
	// never passes the read index).
	out := window[:0]
	outIdx := winIdx[:0]
	var consumed []int
	for k, c := range window {
		drop := false
		for _, l := range c {
			if l.Var() == v {
				drop = true
				break
			}
		}
		if drop {
			consumed = append(consumed, winIdx[k])
		} else {
			out = append(out, c)
			outIdx = append(outIdx, winIdx[k])
		}
	}

	if val, isConst := expr.IsConst(); isConst {
		// v is a primary output constrained to the constant. If v already
		// has a node this adds the constraint to it; otherwise v becomes a
		// free input carrying the constraint directly.
		id := t.nodeForOutput(v)
		t.res.Circuit.MarkOutput(id, val)
		t.res.OutputSources = append(t.res.OutputSources, consumed)
		t.kind[v] = PrimaryOutput
		t.classed[v] = true
		t.res.PrimaryOutputs = append(t.res.PrimaryOutputs, v)
	} else {
		env := map[int]circuit.NodeID{}
		for _, sv := range expr.Support() {
			env[sv] = t.nodeFor(sv)
		}
		id := t.res.Circuit.InstantiateExpr(expr, env)
		t.res.Circuit.Nodes[id].Var = v
		t.res.NodeOf[v] = id
		t.kind[v] = Intermediate
		t.classed[v] = true
		t.res.Intermediates = append(t.res.Intermediates, v)
	}
	return out, outIdx
}

// nodeForOutput returns v's node for an output constraint without forcing a
// PI classification for a fresh v.
func (t *transformer) nodeForOutput(v int) circuit.NodeID {
	if id, ok := t.res.NodeOf[v]; ok {
		return id
	}
	id := t.res.Circuit.AddInput(fmt.Sprintf("x%d", v))
	t.res.Circuit.Nodes[id].Var = v
	t.res.NodeOf[v] = id
	return id
}

// fallback converts an unresolvable window into an auxiliary output: the
// conjunction of its clauses, constrained to 1 (the paper's under-specified
// case, e.g. the trailing "10 0" unit clause in Fig. 1). The whole window
// is the output's clause provenance.
func (t *transformer) fallback(window []cnf.Clause, winIdx []int) {
	var terms []*logic.Expr
	for _, c := range window {
		var lits []*logic.Expr
		for _, l := range c {
			lits = append(lits, logic.Lit(l.Var(), l.Positive()))
		}
		terms = append(terms, logic.Or(lits...))
	}
	expr := logic.And(terms...)
	if len(expr.Support()) <= 12 {
		expr = logic.Simplify(expr)
	}
	t.res.Bindings = append(t.res.Bindings, Binding{Var: 0, Expr: expr})
	t.res.Fallbacks++
	srcs := append([]int(nil), winIdx...)

	if val, isConst := expr.IsConst(); isConst {
		if !val {
			// The window is unsatisfiable; represent it faithfully with a
			// constant-0 node constrained to 1 so downstream consumers see
			// an unsatisfiable function rather than a silent drop.
			id := t.res.Circuit.AddConst(false)
			t.res.Circuit.MarkOutput(id, true)
			t.res.OutputSources = append(t.res.OutputSources, srcs)
		}
		return
	}
	env := map[int]circuit.NodeID{}
	for _, sv := range expr.Support() {
		env[sv] = t.nodeFor(sv)
	}
	id := t.res.Circuit.InstantiateExpr(expr, env)
	t.res.Circuit.MarkOutput(id, true)
	t.res.OutputSources = append(t.res.OutputSources, srcs)
}
