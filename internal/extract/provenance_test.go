package extract_test

import (
	"math/rand"
	"testing"

	"repro/internal/benchgen"
	"repro/internal/extract"
)

// TestOutputSourcesAligned: the clause-provenance table must carry exactly
// one entry per circuit output, each listing valid, duplicate-free original
// clause indices — the invariant clause-weighted GD aggregates over.
func TestOutputSourcesAligned(t *testing.T) {
	for _, in := range benchgen.SmallSuite() {
		ext, err := extract.Transform(in.Formula)
		if err != nil {
			t.Fatalf("%s: %v", in.Name, err)
		}
		if got, want := len(ext.OutputSources), len(ext.Circuit.Outputs); got != want {
			t.Fatalf("%s: %d provenance entries for %d outputs", in.Name, got, want)
		}
		seen := map[int]bool{}
		for oi, srcs := range ext.OutputSources {
			for _, ci := range srcs {
				if ci < 0 || ci >= in.Formula.NumClauses() {
					t.Fatalf("%s output %d: clause index %d out of range", in.Name, oi, ci)
				}
				// A clause constrains at most one output: commit consumes
				// its clauses and fallback windows are disjoint.
				if seen[ci] {
					t.Fatalf("%s output %d: clause %d attributed twice", in.Name, oi, ci)
				}
				seen[ci] = true
			}
		}
	}
}

// TestProjectionNodes: variables with nodes map to them, nodeless variables
// map to -1.
func TestProjectionNodes(t *testing.T) {
	in := benchgen.SmallSuite()[0]
	ext, err := extract.Transform(in.Formula)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	vars := []int{1, in.Formula.NumVars, in.Formula.NumVars + 7, 1 + r.Intn(in.Formula.NumVars)}
	plan := ext.ProjectionNodes(vars)
	for i, v := range vars {
		id, ok := ext.NodeOf[v]
		switch {
		case ok && plan[i] != int32(id):
			t.Errorf("var %d: plan %d, node %d", v, plan[i], id)
		case !ok && plan[i] != -1:
			t.Errorf("nodeless var %d: plan %d, want -1", v, plan[i])
		}
	}
}
