package extract

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/sat"
)

const paperExample = `c paper Fig. 1 CNF example
p cnf 14 21
-1 -2 0
1 2 0
-2 3 0
2 -3 0
-3 4 0
3 -4 0
-4 -11 5 0
-4 11 -5 0
4 -12 5 0
4 12 -5 0
-6 7 0
6 -7 0
-7 8 0
7 -8 0
-8 -9 0
8 9 0
-9 -13 10 0
-9 13 -10 0
9 -14 10 0
9 14 -10 0
10 0
`

func mustParse(t *testing.T, s string) *cnf.Formula {
	t.Helper()
	f, err := cnf.ParseDIMACSString(s)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestTransformPaperExample(t *testing.T) {
	f := mustParse(t, paperExample)
	res, err := Transform(f)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Fig. 1: 6 primary inputs (x1,x11,x12,x6,x13,x14 — or the
	// reversed orientations of the buffer chains, which are equally valid),
	// and one constrained output (x10 = 1).
	if got := len(res.Circuit.Inputs); got != 6 {
		t.Errorf("primary inputs = %d want 6", got)
	}
	if got := len(res.Circuit.Outputs); got != 1 {
		t.Errorf("outputs = %d want 1", got)
	}
	// Equisatisfiability: every primary-input assignment that satisfies the
	// circuit outputs must satisfy the CNF; the count of such assignments
	// must equal the CNF model count.
	checkBijection(t, f, res)
}

// checkBijection verifies |models(CNF)| == |{PI assignments driving outputs
// to targets}| and that each such PI assignment extends to a CNF model via
// circuit evaluation. Only usable for small input counts.
func checkBijection(t *testing.T, f *cnf.Formula, res *Result) {
	t.Helper()
	n := len(res.Circuit.Inputs)
	if n > 16 {
		t.Fatalf("checkBijection: too many inputs (%d)", n)
	}
	satisfying := 0
	for mask := 0; mask < 1<<n; mask++ {
		in := make([]bool, n)
		for i := range in {
			in[i] = mask&(1<<i) != 0
		}
		if !res.Circuit.OutputsSatisfied(in) {
			continue
		}
		satisfying++
		assign := res.AssignmentFromInputs(f.NumVars, in)
		if !f.Sat(assign) {
			t.Fatalf("PI assignment %v drives outputs but extended assignment falsifies CNF (clause %d)",
				in, f.FirstUnsat(assign))
		}
	}
	// CNF variables that occur in no clause are free: each doubles the model
	// count but cannot appear in the extracted circuit.
	occurs := make([]bool, f.NumVars)
	for _, c := range f.Clauses {
		for _, l := range c {
			occurs[l.Var()-1] = true
		}
	}
	freeVars := 0
	for _, o := range occurs {
		if !o {
			freeVars++
		}
	}
	want := sat.CountModels(f, 0)
	if satisfying<<freeVars != want {
		t.Fatalf("satisfying PI assignments = %d (×2^%d free), CNF models = %d", satisfying, freeVars, want)
	}
}

func TestTransformPaperMuxClauses(t *testing.T) {
	// Eq. (5) of the paper with variables renumbered (x4→x1, x107→x2,
	// x108→x3, x5→x4 — model counting needs a dense variable range), plus a
	// unit clause constraining the mux output so its window resolves.
	f := mustParse(t, `p cnf 4 5
-1 -2 4 0
-1 2 -4 0
1 -3 4 0
1 3 -4 0
4 0
`)
	res, err := Transform(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Intermediates) != 1 || res.Intermediates[0] != 4 {
		t.Errorf("intermediates = %v want [4]", res.Intermediates)
	}
	checkBijection(t, f, res)
}

func TestTransformInverterPair(t *testing.T) {
	f := mustParse(t, "p cnf 2 2\n-1 -2 0\n1 2 0\n")
	res, err := Transform(f)
	if err != nil {
		t.Fatal(err)
	}
	// One of the two variables becomes an inverter of the other.
	if len(res.Intermediates) != 1 || len(res.PrimaryInputs) != 1 {
		t.Errorf("classification: PI=%v IV=%v", res.PrimaryInputs, res.Intermediates)
	}
	checkBijection(t, f, res)
}

func TestTransformUnitOnlyVariable(t *testing.T) {
	// A fresh variable constrained by a unit clause becomes a primary
	// output with a constant binding.
	f := mustParse(t, "p cnf 1 1\n1 0\n")
	res, err := Transform(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PrimaryOutputs) != 1 || res.PrimaryOutputs[0] != 1 {
		t.Errorf("primary outputs = %v want [1]", res.PrimaryOutputs)
	}
	checkBijection(t, f, res)
}

func TestTransformUnderSpecifiedOr(t *testing.T) {
	// The paper's under-specified example: (x1 ∨ x2) alone — no output
	// variable derivable; an auxiliary output constrained to 1 is created.
	f := mustParse(t, "p cnf 2 1\n1 2 0\n")
	res, err := Transform(f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallbacks != 1 {
		t.Errorf("fallbacks = %d want 1", res.Fallbacks)
	}
	checkBijection(t, f, res)
}

func TestTransformDisjointWindowNotDropped(t *testing.T) {
	// (x3 ∨ x4) precedes an unrelated inverter pair; the constraint must
	// survive as an auxiliary output (this is the constraint-loss trap the
	// lookahead flush exists for).
	f := mustParse(t, "p cnf 4 3\n3 4 0\n-1 -2 0\n1 2 0\n")
	res, err := Transform(f)
	if err != nil {
		t.Fatal(err)
	}
	checkBijection(t, f, res)
}

func TestTransformInterleavedSharedWindow(t *testing.T) {
	// An unrelated clause sharing the window with gate clauses (because its
	// variables also occur later) must not be discarded on gate resolution.
	f := mustParse(t, `p cnf 4 4
3 4 0
-1 -2 0
1 2 0
-3 -4 0
`)
	res, err := Transform(f)
	if err != nil {
		t.Fatal(err)
	}
	checkBijection(t, f, res)
}

func TestTransformAndGate(t *testing.T) {
	// Tseitin AND: f=3, inputs 1,2 — then f constrained true.
	f := mustParse(t, `p cnf 3 4
3 -1 -2 0
-3 1 0
-3 2 0
3 0
`)
	res, err := Transform(f)
	if err != nil {
		t.Fatal(err)
	}
	checkBijection(t, f, res)
}

func TestTransformXorSignature(t *testing.T) {
	// Eq. (4): 2-input XOR f = x1 ⊕ x2 (variable 3), output constrained 1.
	f := mustParse(t, `p cnf 3 5
-3 1 2 0
-3 -1 -2 0
3 -1 2 0
3 1 -2 0
3 0
`)
	res, err := Transform(f)
	if err != nil {
		t.Fatal(err)
	}
	checkBijection(t, f, res)
}

func TestTransformEmptyClauseError(t *testing.T) {
	f := cnf.New(1)
	f.Clauses = append(f.Clauses, cnf.Clause{})
	if _, err := Transform(f); err == nil {
		t.Error("empty clause did not error")
	}
}

func TestTransformStatsPopulated(t *testing.T) {
	f := mustParse(t, paperExample)
	res, err := Transform(f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows == 0 {
		t.Error("no windows resolved")
	}
	if res.TransformTime <= 0 {
		t.Error("transform time not recorded")
	}
	if len(res.Bindings) == 0 {
		t.Error("no bindings recorded")
	}
}

// TestTransformRandomCircuitsRoundTrip is the main equisatisfiability
// property: random circuit → Tseitin CNF → Transform → the recovered
// function has exactly the same satisfying-input count as the CNF's model
// count, and every recovered solution verifies against the CNF.
func TestTransformRandomCircuitsRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 40; trial++ {
		c := randomCircuit(r, 3+r.Intn(3), 4+r.Intn(8))
		enc := c.Tseitin()
		res, err := Transform(enc.Formula)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(res.Circuit.Inputs) > 14 {
			continue
		}
		checkBijection(t, enc.Formula, res)
	}
}

// TestTransformOpsReduction checks the Fig. 4 (middle) property: the
// recovered multi-level function has fewer 2-input gate equivalents than
// the CNF on gate-structured instances.
func TestTransformOpsReduction(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	c := randomCircuit(r, 8, 60)
	enc := c.Tseitin()
	res, err := Transform(enc.Formula)
	if err != nil {
		t.Fatal(err)
	}
	cnfOps := enc.Formula.OpCount2()
	cktOps := res.Circuit.OpCount2()
	if cktOps >= cnfOps {
		t.Errorf("no ops reduction: circuit %d >= CNF %d", cktOps, cnfOps)
	}
	t.Logf("ops reduction: %.2fx (CNF %d → circuit %d)", float64(cnfOps)/float64(cktOps), cnfOps, cktOps)
}

func randomCircuit(r *rand.Rand, inputs, gates int) *circuit.Circuit {
	c := circuit.NewCircuit()
	for i := 0; i < inputs; i++ {
		c.AddInput("")
	}
	types := []circuit.GateType{circuit.And, circuit.Or, circuit.Nand, circuit.Nor, circuit.Xor, circuit.Not}
	for g := 0; g < gates; g++ {
		ty := types[r.Intn(len(types))]
		pick := func() circuit.NodeID { return circuit.NodeID(r.Intn(c.NumNodes())) }
		switch ty {
		case circuit.Not:
			c.AddGate(ty, pick())
		default:
			a, b := pick(), pick()
			if a == b {
				continue
			}
			c.AddGate(ty, a, b)
		}
	}
	// Constrain the last node to its value under a random input assignment,
	// guaranteeing satisfiability.
	in := make([]bool, inputs)
	for i := range in {
		in[i] = r.Intn(2) == 0
	}
	vals := c.Eval(in)
	last := circuit.NodeID(c.NumNodes() - 1)
	c.MarkOutput(last, vals[last])
	return c
}

func TestGateHistogram(t *testing.T) {
	f := mustParse(t, paperExample)
	res, err := Transform(f)
	if err != nil {
		t.Fatal(err)
	}
	h := res.GateHistogram()
	total := 0
	for _, n := range h {
		total += n
	}
	if total != res.Circuit.NumNodes() {
		t.Errorf("histogram total %d != nodes %d", total, res.Circuit.NumNodes())
	}
	if h["INPUT"] != len(res.Circuit.Inputs) {
		t.Errorf("INPUT count %d != inputs %d", h["INPUT"], len(res.Circuit.Inputs))
	}
}
