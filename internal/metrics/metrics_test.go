package metrics

import (
	"math"
	"math/rand"
	"testing"
)

func bits(pattern ...int) []bool {
	out := make([]bool, len(pattern))
	for i, p := range pattern {
		out[i] = p != 0
	}
	return out
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(2)
	h.Add(bits(0, 0))
	h.Add(bits(0, 0))
	h.Add(bits(1, 0))
	if h.Total() != 3 {
		t.Errorf("Total = %d want 3", h.Total())
	}
	if h.Distinct() != 2 {
		t.Errorf("Distinct = %d want 2", h.Distinct())
	}
	if got := h.Coverage(4); got != 0.5 {
		t.Errorf("Coverage = %v want 0.5", got)
	}
}

func TestHistogramWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on width mismatch")
		}
	}()
	NewHistogram(2).Add(bits(1))
}

func TestChiSquareUniformIsSmall(t *testing.T) {
	// Uniform sampling over 8 solutions: statistic should be near dof.
	r := rand.New(rand.NewSource(1))
	h := NewHistogram(3)
	for i := 0; i < 8000; i++ {
		v := r.Intn(8)
		h.Add(bits(v&1, (v>>1)&1, (v>>2)&1))
	}
	stat, dof := h.ChiSquare(8)
	if dof != 7 {
		t.Fatalf("dof = %d want 7", dof)
	}
	// 99.9th percentile of chi²(7) ≈ 24.3.
	if stat > 24.3 {
		t.Errorf("chi² = %.1f too large for uniform data", stat)
	}
}

func TestChiSquareSkewedIsLarge(t *testing.T) {
	h := NewHistogram(3)
	for i := 0; i < 8000; i++ {
		h.Add(bits(0, 0, 0)) // always the same solution
	}
	stat, _ := h.ChiSquare(8)
	if stat < 1000 {
		t.Errorf("chi² = %.1f too small for fully-skewed data", stat)
	}
}

func TestKLFromUniform(t *testing.T) {
	// Exactly uniform over the full space: KL = 0.
	h := NewHistogram(2)
	for v := 0; v < 4; v++ {
		h.Add(bits(v&1, (v>>1)&1))
	}
	if kl := h.KLFromUniform(4); math.Abs(kl) > 1e-12 {
		t.Errorf("KL = %v want 0", kl)
	}
	// Point mass on one of 4 solutions: KL = log2(4) = 2 bits.
	p := NewHistogram(2)
	p.Add(bits(1, 1))
	if kl := p.KLFromUniform(4); math.Abs(kl-2) > 1e-12 {
		t.Errorf("KL = %v want 2", kl)
	}
}

func TestMinMaxRatio(t *testing.T) {
	h := NewHistogram(1)
	h.Add(bits(0))
	h.Add(bits(0))
	h.Add(bits(1))
	if got := h.MinMaxRatio(); got != 2 {
		t.Errorf("MinMaxRatio = %v want 2", got)
	}
	if got := NewHistogram(1).MinMaxRatio(); got != 0 {
		t.Errorf("empty MinMaxRatio = %v want 0", got)
	}
}

func TestTopK(t *testing.T) {
	h := NewHistogram(2)
	h.Add(bits(0, 0))
	h.Add(bits(1, 0))
	h.Add(bits(1, 0))
	top := h.TopK(1)
	if len(top) != 1 || top[0].Count != 2 {
		t.Errorf("TopK = %+v", top)
	}
	if got := len(h.TopK(10)); got != 2 {
		t.Errorf("TopK(10) returned %d entries want 2", got)
	}
}

func TestMarginals(t *testing.T) {
	h := NewHistogram(2)
	h.Add(bits(1, 0))
	h.Add(bits(1, 1))
	m := h.Marginals()
	if m[0] != 1.0 || m[1] != 0.5 {
		t.Errorf("Marginals = %v want [1 0.5]", m)
	}
}

func TestZeroSampleEdgeCases(t *testing.T) {
	h := NewHistogram(3)
	if stat, dof := h.ChiSquare(8); stat != 0 || dof != 0 {
		t.Error("empty chi-square should be zero")
	}
	if h.KLFromUniform(8) != 0 {
		t.Error("empty KL should be zero")
	}
	m := h.Marginals()
	for _, v := range m {
		if v != 0 {
			t.Error("empty marginals should be zero")
		}
	}
}
