// Package metrics provides sampling-quality measurements for SAT samplers:
// empirical uniformity tests over the solution space (chi-square statistic
// against the uniform distribution, KL divergence estimate, coverage) and
// per-bit marginal diagnostics. The paper positions its sampler against
// UniGen3 (almost-uniform by construction) and CMSGen/QuickSampler
// (no guarantee, tested empirically by Pote et al.'s sampler-testing line
// of work); this package implements the empirical side of that comparison.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Histogram counts occurrences of distinct solutions (keyed by their
// packed bit pattern).
type Histogram struct {
	counts map[string]int
	total  int
	bits   int
}

// NewHistogram creates a histogram for solutions of the given bit width.
func NewHistogram(bits int) *Histogram {
	return &Histogram{counts: map[string]int{}, bits: bits}
}

// Add records one sampled solution.
func (h *Histogram) Add(sol []bool) {
	if len(sol) != h.bits {
		panic(fmt.Sprintf("metrics: solution width %d, histogram width %d", len(sol), h.bits))
	}
	h.counts[pack(sol)]++
	h.total++
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() int { return h.total }

// Distinct returns the number of distinct solutions observed.
func (h *Histogram) Distinct() int { return len(h.counts) }

// Coverage returns the fraction of the solution space observed, given the
// true solution count.
func (h *Histogram) Coverage(spaceSize float64) float64 {
	if spaceSize <= 0 {
		return 0
	}
	return float64(len(h.counts)) / spaceSize
}

// ChiSquare returns the chi-square statistic of the observed counts
// against the uniform distribution over a space of spaceSize solutions,
// together with the degrees of freedom. Unobserved solutions contribute
// their expected count. A statistic close to the degrees of freedom is
// consistent with uniform sampling.
func (h *Histogram) ChiSquare(spaceSize float64) (stat float64, dof int) {
	if spaceSize <= 0 || h.total == 0 {
		return 0, 0
	}
	expected := float64(h.total) / spaceSize
	for _, c := range h.counts {
		d := float64(c) - expected
		stat += d * d / expected
	}
	unseen := spaceSize - float64(len(h.counts))
	stat += unseen * expected // each unseen cell contributes (0-E)^2/E = E
	return stat, int(spaceSize) - 1
}

// KLFromUniform estimates the Kullback–Leibler divergence D(empirical ‖
// uniform) in bits. Zero means exactly uniform over the support; the
// estimate ignores unseen solutions (standard plug-in estimator).
func (h *Histogram) KLFromUniform(spaceSize float64) float64 {
	if h.total == 0 || spaceSize <= 0 {
		return 0
	}
	kl := 0.0
	for _, c := range h.counts {
		p := float64(c) / float64(h.total)
		q := 1 / spaceSize
		kl += p * math.Log2(p/q)
	}
	return kl
}

// MinMaxRatio returns the ratio of the most to least frequent observed
// solution (1.0 = perfectly balanced support).
func (h *Histogram) MinMaxRatio() float64 {
	if len(h.counts) == 0 {
		return 0
	}
	min, max := math.MaxInt64, 0
	for _, c := range h.counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if min == 0 {
		return math.Inf(1)
	}
	return float64(max) / float64(min)
}

// TopK returns the k most frequent solutions and their counts, most
// frequent first (ties broken by key for determinism).
func (h *Histogram) TopK(k int) []SolutionCount {
	out := make([]SolutionCount, 0, len(h.counts))
	for key, c := range h.counts {
		out = append(out, SolutionCount{Key: key, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// SolutionCount pairs a packed solution key with its observation count.
type SolutionCount struct {
	Key   string
	Count int
}

// Marginals returns the per-bit empirical probability of 1 across all
// recorded samples (including duplicates) — a cheap skew diagnostic: free
// bits of a uniform sampler sit near 0.5.
func (h *Histogram) Marginals() []float64 {
	m := make([]float64, h.bits)
	if h.total == 0 {
		return m
	}
	for key, c := range h.counts {
		for i := 0; i < h.bits; i++ {
			if key[i/8]&(1<<(i%8)) != 0 {
				m[i] += float64(c)
			}
		}
	}
	for i := range m {
		m[i] /= float64(h.total)
	}
	return m
}

func pack(b []bool) string {
	out := make([]byte, (len(b)+7)/8)
	for i, v := range b {
		if v {
			out[i/8] |= 1 << (i % 8)
		}
	}
	return string(out)
}
