package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestToNNFBasics(t *testing.T) {
	cases := []struct {
		in string
	}{
		{"!(x1 & x2)"},
		{"!(x1 | x2 | !x3)"},
		{"x1 ^ x2"},
		{"!(x1 ^ x2 ^ x3)"},
		{"!(x1 & (x2 | !(x3 & x4)))"},
		{"1"},
		{"!x1"},
	}
	for _, c := range cases {
		e := MustParse(c.in)
		n := ToNNF(e)
		if !IsNNF(n) {
			t.Errorf("ToNNF(%q) = %v not in NNF", c.in, n)
		}
		if !Equivalent(e, n) {
			t.Errorf("ToNNF(%q) changed semantics", c.in)
		}
	}
}

func TestIsNNF(t *testing.T) {
	if !IsNNF(MustParse("x1 & (!x2 | x3)")) {
		t.Error("valid NNF rejected")
	}
	if IsNNF(MustParse("!(x1 & x2)")) {
		t.Error("negated conjunction accepted as NNF")
	}
	if IsNNF(MustParse("x1 ^ x2")) {
		t.Error("XOR accepted as NNF")
	}
}

func TestToNNFProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomExpr(r, 5, 4)
		n := ToNNF(e)
		return IsNNF(n) && Equivalent(e, n)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestCubesOfMux(t *testing.T) {
	// mux(s, a, b): minimal SOP has 2 cubes (plus possibly the consensus
	// term; QM greedy cover should find 2).
	e := MustParse("(x1 & x2) | (!x1 & x3)")
	cubes := Cubes(e)
	if len(cubes) < 2 || len(cubes) > 3 {
		t.Fatalf("mux cubes = %d want 2-3", len(cubes))
	}
	// Rebuild and compare.
	terms := make([]*Expr, len(cubes))
	for i, c := range cubes {
		terms[i] = c.Expr()
	}
	if !Equivalent(e, Or(terms...)) {
		t.Error("cube cover not equivalent")
	}
}

func TestCubesOfConstants(t *testing.T) {
	if got := Cubes(True()); len(got) != 1 || len(got[0]) != 0 {
		t.Errorf("Cubes(true) = %v", got)
	}
	if got := Cubes(False()); got != nil {
		t.Errorf("Cubes(false) = %v", got)
	}
}

func TestCubeExprRoundTrip(t *testing.T) {
	c := Cube{1: true, 3: false}
	e := c.Expr()
	if !Equivalent(e, And(V(1), Not(V(3)))) {
		t.Errorf("Cube.Expr = %v", e)
	}
	if phase, ok := c.Contains(3); !ok || phase {
		t.Error("Contains(3) wrong")
	}
	if _, ok := c.Contains(2); ok {
		t.Error("Contains(2) should be absent")
	}
	if Key(Cube{}.Expr()) != Key(True()) {
		t.Error("empty cube should be true")
	}
}

// TestCubesCoverExactlyProperty: the cube cover equals the function.
func TestCubesCoverExactlyProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomExpr(r, 4, 3)
		cubes := Cubes(e)
		terms := make([]*Expr, len(cubes))
		for i, c := range cubes {
			terms[i] = c.Expr()
		}
		return Equivalent(e, Or(terms...))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCountLiterals(t *testing.T) {
	cases := map[string]int{
		"x1":                    1,
		"!x1":                   1,
		"x1 & x2":               2,
		"(x1 | x2) & !x3":       3,
		"x1 ^ x1 ^ x2":          1, // constructor cancellation
		"1":                     0,
		"(x1 & x2) | (x1 & x3)": 4,
	}
	for in, want := range cases {
		if got := CountLiterals(MustParse(in)); got != want {
			t.Errorf("CountLiterals(%q) = %d want %d", in, got, want)
		}
	}
}
