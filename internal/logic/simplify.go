package logic

import "sort"

// Restrict returns e with variable id fixed to value, with constant folding
// applied bottom-up (a Shannon cofactor).
func Restrict(e *Expr, id int, value bool) *Expr {
	switch e.Op {
	case OpConst:
		return e
	case OpVar:
		if e.Var == id {
			return Const(value)
		}
		return e
	case OpNot:
		return Not(Restrict(e.Args[0], id, value))
	case OpAnd, OpOr, OpXor:
		args := make([]*Expr, len(e.Args))
		for i, a := range e.Args {
			args[i] = Restrict(a, id, value)
		}
		switch e.Op {
		case OpAnd:
			return And(args...)
		case OpOr:
			return Or(args...)
		default:
			return Xor(args...)
		}
	}
	panic("logic: invalid op in Restrict")
}

// Substitute returns e with every occurrence of variable id replaced by sub.
func Substitute(e *Expr, id int, sub *Expr) *Expr {
	switch e.Op {
	case OpConst:
		return e
	case OpVar:
		if e.Var == id {
			return sub
		}
		return e
	case OpNot:
		return Not(Substitute(e.Args[0], id, sub))
	case OpAnd, OpOr, OpXor:
		args := make([]*Expr, len(e.Args))
		for i, a := range e.Args {
			args[i] = Substitute(a, id, sub)
		}
		switch e.Op {
		case OpAnd:
			return And(args...)
		case OpOr:
			return Or(args...)
		default:
			return Xor(args...)
		}
	}
	panic("logic: invalid op in Substitute")
}

// maxTTVars bounds the support size for truth-table based procedures.
// 2^20 rows ≈ 1M evaluations, still fast for the clause windows Algorithm 1
// inspects (a handful of variables).
const maxTTVars = 20

// TruthTable returns the truth table of e over its sorted support and the
// support itself. It panics if the support exceeds maxTTVars variables.
func TruthTable(e *Expr) (table []bool, support []int) {
	support = e.Support()
	return truthTableOn(e, support), support
}

func truthTableOn(e *Expr, support []int) []bool {
	if len(support) > maxTTVars {
		panic("logic: support too large for truth table")
	}
	rows := 1 << len(support)
	table := make([]bool, rows)
	idx := make(map[int]int, len(support))
	for i, id := range support {
		idx[id] = i
	}
	for r := 0; r < rows; r++ {
		table[r] = e.Eval(func(id int) bool {
			i, ok := idx[id]
			if !ok {
				return false
			}
			return r&(1<<i) != 0
		})
	}
	return table
}

// Equivalent reports whether a and b compute the same function, decided by
// exhaustive evaluation over the union of their supports. Intended for the
// small supports that arise in clause-window analysis.
func Equivalent(a, b *Expr) bool {
	support := unionSupport(a, b)
	ta := truthTableOn(a, support)
	tb := truthTableOn(b, support)
	for i := range ta {
		if ta[i] != tb[i] {
			return false
		}
	}
	return true
}

// Complementary reports whether a == ¬b as Boolean functions.
func Complementary(a, b *Expr) bool {
	support := unionSupport(a, b)
	ta := truthTableOn(a, support)
	tb := truthTableOn(b, support)
	for i := range ta {
		if ta[i] == tb[i] {
			return false
		}
	}
	return true
}

func unionSupport(a, b *Expr) []int {
	set := map[int]struct{}{}
	for _, id := range a.Support() {
		set[id] = struct{}{}
	}
	for _, id := range b.Support() {
		set[id] = struct{}{}
	}
	ids := make([]int, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Simplify returns a semantically equal expression that is no larger than e,
// obtained by constructor-level folding plus, for small supports, a
// Quine–McCluskey-style two-level minimization with factoring of the
// dominant literal. Large-support expressions are returned after
// constructor folding only.
func Simplify(e *Expr) *Expr {
	e = rebuild(e)
	support := e.Support()
	if len(support) == 0 || len(support) > 12 {
		return e
	}
	table := truthTableOn(e, support)
	min := minimizeSOP(table, support)
	if min.Size() < e.Size() {
		return min
	}
	return e
}

// rebuild reconstructs e through the folding constructors so nested
// redundancies introduced by callers collapse.
func rebuild(e *Expr) *Expr {
	switch e.Op {
	case OpConst, OpVar:
		return e
	case OpNot:
		return Not(rebuild(e.Args[0]))
	case OpAnd, OpOr, OpXor:
		args := make([]*Expr, len(e.Args))
		for i, a := range e.Args {
			args[i] = rebuild(a)
		}
		switch e.Op {
		case OpAnd:
			return And(args...)
		case OpOr:
			return Or(args...)
		default:
			return Xor(args...)
		}
	}
	panic("logic: invalid op in rebuild")
}

// cube is a product term over the support: for each position, 0 = negated,
// 1 = positive, 2 = don't-care.
type cube []uint8

func (c cube) covers(row int) bool {
	for i, v := range c {
		bit := row&(1<<i) != 0
		if v == 2 {
			continue
		}
		if (v == 1) != bit {
			return false
		}
	}
	return true
}

func (c cube) key() string {
	b := make([]byte, len(c))
	for i, v := range c {
		b[i] = '0' + v
	}
	return string(b)
}

// minimizeSOP produces a minimal-ish sum-of-products for the function given
// by table over support, then converts it back to an Expr. It implements
// the Quine–McCluskey prime generation followed by a greedy cover.
func minimizeSOP(table []bool, support []int) *Expr {
	n := len(support)
	var minterms []int
	for r, v := range table {
		if v {
			minterms = append(minterms, r)
		}
	}
	if len(minterms) == 0 {
		return False()
	}
	if len(minterms) == len(table) {
		return True()
	}

	// Seed cubes are the minterms themselves.
	current := map[string]cube{}
	for _, m := range minterms {
		c := make(cube, n)
		for i := 0; i < n; i++ {
			if m&(1<<i) != 0 {
				c[i] = 1
			}
		}
		current[c.key()] = c
	}

	var primes []cube
	for len(current) > 0 {
		merged := map[string]bool{}
		next := map[string]cube{}
		keys := sortedKeys(current)
		for i := 0; i < len(keys); i++ {
			for j := i + 1; j < len(keys); j++ {
				a, b := current[keys[i]], current[keys[j]]
				if d := mergeDistance(a, b); d >= 0 {
					c := make(cube, n)
					copy(c, a)
					c[d] = 2
					next[c.key()] = c
					merged[keys[i]] = true
					merged[keys[j]] = true
				}
			}
		}
		for _, k := range keys {
			if !merged[k] {
				primes = append(primes, current[k])
			}
		}
		current = next
	}

	// Greedy cover of minterms by primes (essential primes first).
	chosen := greedyCover(minterms, primes)

	terms := make([]*Expr, 0, len(chosen))
	for _, c := range chosen {
		var lits []*Expr
		for i, v := range c {
			switch v {
			case 0:
				lits = append(lits, Not(V(support[i])))
			case 1:
				lits = append(lits, V(support[i]))
			}
		}
		terms = append(terms, And(lits...))
	}
	return Or(terms...)
}

// mergeDistance returns the single position where a and b differ in a
// mergeable way (both specified, opposite), or -1.
func mergeDistance(a, b cube) int {
	d := -1
	for i := range a {
		if a[i] == b[i] {
			continue
		}
		if a[i] == 2 || b[i] == 2 {
			return -1
		}
		if d >= 0 {
			return -1
		}
		d = i
	}
	return d
}

func greedyCover(minterms []int, primes []cube) []cube {
	uncovered := map[int]bool{}
	for _, m := range minterms {
		uncovered[m] = true
	}
	var chosen []cube
	for len(uncovered) > 0 {
		best, bestCount := -1, 0
		for i, p := range primes {
			count := 0
			for m := range uncovered {
				if p.covers(m) {
					count++
				}
			}
			if count > bestCount {
				best, bestCount = i, count
			}
		}
		if best < 0 {
			break // cannot happen for a consistent table; defensive
		}
		chosen = append(chosen, primes[best])
		for m := range uncovered {
			if primes[best].covers(m) {
				delete(uncovered, m)
			}
		}
	}
	return chosen
}

func sortedKeys(m map[string]cube) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
