package logic

import "sort"

// ToNNF returns an equivalent expression in negation normal form: negations
// appear only directly above variables, and XORs are expanded into
// AND/OR/NOT form. The result can be exponentially larger for deep XOR
// towers (inherent to NNF).
func ToNNF(e *Expr) *Expr {
	return nnf(e, false)
}

func nnf(e *Expr, negate bool) *Expr {
	switch e.Op {
	case OpConst:
		return Const(e.Val != negate)
	case OpVar:
		if negate {
			return Not(e)
		}
		return e
	case OpNot:
		return nnf(e.Args[0], !negate)
	case OpAnd, OpOr:
		args := make([]*Expr, len(e.Args))
		for i, a := range e.Args {
			args[i] = nnf(a, negate)
		}
		// De Morgan: negation flips the connective.
		if (e.Op == OpAnd) != negate {
			return And(args...)
		}
		return Or(args...)
	case OpXor:
		// a ⊕ b = (a ∧ ¬b) ∨ (¬a ∧ b); fold left over the argument list,
		// then push the outer negation in.
		cur := nnf(e.Args[0], false)
		for _, a := range e.Args[1:] {
			x := nnf(a, false)
			cur = Or(And(cur, nnf2Not(x)), And(nnf2Not(cur), x))
		}
		if negate {
			return nnf(cur, true)
		}
		return cur
	}
	panic("logic: invalid op in nnf")
}

// nnf2Not negates an NNF expression, keeping it in NNF.
func nnf2Not(e *Expr) *Expr { return nnf(e, true) }

// IsNNF reports whether negations in e appear only directly above
// variables and no XOR nodes remain.
func IsNNF(e *Expr) bool {
	switch e.Op {
	case OpConst, OpVar:
		return true
	case OpNot:
		return e.Args[0].Op == OpVar
	case OpAnd, OpOr:
		for _, a := range e.Args {
			if !IsNNF(a) {
				return false
			}
		}
		return true
	}
	return false
}

// Cube is a conjunction of literals, represented as a map from variable id
// to phase (true = positive literal).
type Cube map[int]bool

// Cubes returns the irredundant sum-of-products of e as a list of cubes,
// computed via Quine–McCluskey over e's support. Intended for small
// supports (≤ maxTTVars variables); panics beyond that.
func Cubes(e *Expr) []Cube {
	table, support := TruthTable(e)
	min := minimizeSOP(table, support)
	return sopToCubes(min)
}

func sopToCubes(e *Expr) []Cube {
	collectTerm := func(term *Expr) Cube {
		c := Cube{}
		addLit := func(l *Expr) {
			switch l.Op {
			case OpVar:
				c[l.Var] = true
			case OpNot:
				c[l.Args[0].Var] = false
			default:
				panic("logic: non-literal in SOP term")
			}
		}
		switch term.Op {
		case OpVar, OpNot:
			addLit(term)
		case OpAnd:
			for _, l := range term.Args {
				addLit(l)
			}
		default:
			panic("logic: non-cube SOP term")
		}
		return c
	}
	switch e.Op {
	case OpConst:
		if e.Val {
			return []Cube{{}} // single empty cube = true
		}
		return nil
	case OpOr:
		out := make([]Cube, 0, len(e.Args))
		for _, t := range e.Args {
			out = append(out, collectTerm(t))
		}
		return out
	default:
		return []Cube{collectTerm(e)}
	}
}

// Expr converts the cube back into an AND-of-literals expression.
func (c Cube) Expr() *Expr {
	if len(c) == 0 {
		return True()
	}
	vars := make([]int, 0, len(c))
	for v := range c {
		vars = append(vars, v)
	}
	sort.Ints(vars)
	lits := make([]*Expr, len(vars))
	for i, v := range vars {
		lits[i] = Lit(v, c[v])
	}
	return And(lits...)
}

// Contains reports whether the cube implies assignment of variable v and
// returns its phase.
func (c Cube) Contains(v int) (phase, ok bool) {
	phase, ok = c[v]
	return
}

// CountLiterals returns the number of literal occurrences in e (a standard
// two-level cost metric used alongside OpCount2).
func CountLiterals(e *Expr) int {
	switch e.Op {
	case OpConst:
		return 0
	case OpVar:
		return 1
	case OpNot:
		return CountLiterals(e.Args[0])
	default:
		n := 0
		for _, a := range e.Args {
			n += CountLiterals(a)
		}
		return n
	}
}
