package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstructorsFoldConstants(t *testing.T) {
	cases := []struct {
		name string
		got  *Expr
		want *Expr
	}{
		{"not-true", Not(True()), False()},
		{"not-not", Not(Not(V(1))), V(1)},
		{"and-true-identity", And(V(1), True()), V(1)},
		{"and-false-dominates", And(V(1), False(), V(2)), False()},
		{"or-false-identity", Or(V(1), False()), V(1)},
		{"or-true-dominates", Or(V(1), True(), V(2)), True()},
		{"and-empty", And(), True()},
		{"or-empty", Or(), False()},
		{"xor-empty", Xor(), False()},
		{"and-dup", And(V(1), V(1)), V(1)},
		{"or-dup", Or(V(2), V(2)), V(2)},
		{"and-compl", And(V(1), Not(V(1))), False()},
		{"or-compl", Or(V(1), Not(V(1))), True()},
		{"xor-self-cancel", Xor(V(1), V(1)), False()},
		{"xor-const-flip", Xor(V(1), True()), Not(V(1))},
		{"xor-double-flip", Xor(V(1), True(), True()), V(1)},
		{"xor-not-arg", Xor(Not(V(1)), V(2)), Not(Xor(V(1), V(2)))},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if Key(c.got) != Key(c.want) {
				t.Fatalf("got %v want %v", c.got, c.want)
			}
		})
	}
}

func TestEval(t *testing.T) {
	// (x1 & x2) | !x3
	e := Or(And(V(1), V(2)), Not(V(3)))
	cases := []struct {
		a    map[int]bool
		want bool
	}{
		{map[int]bool{1: true, 2: true, 3: true}, true},
		{map[int]bool{1: true, 2: false, 3: true}, false},
		{map[int]bool{1: false, 2: false, 3: false}, true},
	}
	for _, c := range cases {
		if got := e.EvalMap(c.a); got != c.want {
			t.Errorf("Eval(%v) = %v want %v", c.a, got, c.want)
		}
	}
}

func TestEvalXorParity(t *testing.T) {
	e := Xor(V(1), V(2), V(3))
	for r := 0; r < 8; r++ {
		want := (r&1 ^ (r>>1)&1 ^ (r>>2)&1) == 1
		got := e.Eval(func(id int) bool { return r&(1<<(id-1)) != 0 })
		if got != want {
			t.Fatalf("row %d: got %v want %v", r, got, want)
		}
	}
}

func TestSupport(t *testing.T) {
	e := Or(And(V(4), V(2)), Xor(V(9), Not(V(2))))
	got := e.Support()
	want := []int{2, 4, 9}
	if len(got) != len(want) {
		t.Fatalf("support %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("support %v want %v", got, want)
		}
	}
}

func TestRestrict(t *testing.T) {
	e := Or(And(V(1), V(2)), And(Not(V(1)), V(3)))
	hi := Restrict(e, 1, true)
	lo := Restrict(e, 1, false)
	if Key(hi) != Key(V(2)) {
		t.Errorf("positive cofactor = %v want x2", hi)
	}
	if Key(lo) != Key(V(3)) {
		t.Errorf("negative cofactor = %v want x3", lo)
	}
}

func TestSubstitute(t *testing.T) {
	e := And(V(1), V(2))
	got := Substitute(e, 2, Or(V(3), V(4)))
	want := And(V(1), Or(V(3), V(4)))
	if Key(got) != Key(want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestEquivalentAndComplementary(t *testing.T) {
	// De Morgan: !(a & b) == !a | !b
	a := Not(And(V(1), V(2)))
	b := Or(Not(V(1)), Not(V(2)))
	if !Equivalent(a, b) {
		t.Error("De Morgan equivalence failed")
	}
	if !Complementary(And(V(1), V(2)), a) {
		t.Error("complement of AND not detected")
	}
	if Complementary(V(1), V(2)) {
		t.Error("x1 and x2 reported complementary")
	}
	if Equivalent(V(1), Not(V(1))) {
		t.Error("x1 equivalent to its negation")
	}
}

// TestPaperMuxExpression checks the worked example from the paper (Eq. 5):
// x5 = (x107 & x4) | (x108 & !x4) and its stated complement.
func TestPaperMuxExpression(t *testing.T) {
	f := Or(And(V(107), V(4)), And(V(108), Not(V(4))))
	g := Or(And(Not(V(107)), V(4)), And(Not(V(108)), Not(V(4))))
	if !Complementary(f, g) {
		t.Fatal("paper mux expression and its complement not detected as complementary")
	}
}

func TestSimplifyMuxRoundTrip(t *testing.T) {
	// A redundant formulation of a 2:1 mux must simplify to something
	// equivalent and no larger.
	raw := Or(
		And(V(1), V(2)),
		And(V(1), V(2), V(3)),
		And(Not(V(1)), V(3)),
		And(Not(V(1)), V(3), V(2)),
	)
	s := Simplify(raw)
	if !Equivalent(raw, s) {
		t.Fatal("Simplify changed semantics")
	}
	if s.Size() > raw.Size() {
		t.Fatalf("Simplify grew the expression: %d > %d", s.Size(), raw.Size())
	}
}

func TestSimplifyConstants(t *testing.T) {
	if got := Simplify(Or(V(1), Not(V(1)))); got != True() {
		t.Errorf("tautology simplified to %v", got)
	}
	if got := Simplify(And(V(1), Not(V(1)))); got != False() {
		t.Errorf("contradiction simplified to %v", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	inputs := []string{
		"x1",
		"!x2",
		"x1 & x2 | x3",
		"(x1 | x2) & !x3",
		"x1 ^ x2 ^ x3",
		"1 & x4",
		"0 | x4",
		"!(x1 & (x2 | !x3))",
	}
	for _, in := range inputs {
		e, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		back, err := Parse(Format(e))
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", Format(e), err)
		}
		if !Equivalent(e, back) {
			t.Fatalf("round trip of %q changed semantics", in)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{"", "x", "x0", "(x1", "x1 &", "x1 x2", "y1", "x1)"}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", in)
		}
	}
}

// randomExpr builds a random expression over variables 1..nv with the given
// depth budget, for property tests.
func randomExpr(r *rand.Rand, nv, depth int) *Expr {
	if depth == 0 || r.Intn(4) == 0 {
		return Lit(1+r.Intn(nv), r.Intn(2) == 0)
	}
	n := 2 + r.Intn(2)
	args := make([]*Expr, n)
	for i := range args {
		args[i] = randomExpr(r, nv, depth-1)
	}
	switch r.Intn(4) {
	case 0:
		return And(args...)
	case 1:
		return Or(args...)
	case 2:
		return Xor(args...)
	default:
		return Not(args[0])
	}
}

func TestSimplifyPreservesSemanticsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		e := randomExpr(r, 6, 4)
		s := Simplify(e)
		if !Equivalent(e, s) {
			t.Fatalf("iteration %d: Simplify(%v) = %v not equivalent", i, e, s)
		}
	}
}

func TestShannonExpansionProperty(t *testing.T) {
	// f == (x & f|x=1) | (!x & f|x=0) for every variable in the support.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomExpr(r, 5, 3)
		for _, id := range e.Support() {
			expansion := Or(
				And(V(id), Restrict(e, id, true)),
				And(Not(V(id)), Restrict(e, id, false)),
			)
			if !Equivalent(e, expansion) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDeMorganProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomExpr(r, 4, 3)
		b := randomExpr(r, 4, 3)
		return Equivalent(Not(And(a, b)), Or(Not(a), Not(b))) &&
			Equivalent(Not(Or(a, b)), And(Not(a), Not(b)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestKeyStableUnderArgOrder(t *testing.T) {
	a := And(V(1), V(2), Not(V(3)))
	b := And(Not(V(3)), V(2), V(1))
	if Key(a) != Key(b) {
		t.Errorf("Key not order-invariant: %q vs %q", Key(a), Key(b))
	}
}

func TestSizeAndIsConst(t *testing.T) {
	e := And(V(1), Or(V(2), V(3)))
	if e.Size() != 5 {
		t.Errorf("Size = %d want 5", e.Size())
	}
	if _, ok := e.IsConst(); ok {
		t.Error("non-constant reported const")
	}
	if v, ok := True().IsConst(); !ok || !v {
		t.Error("True() not reported as const true")
	}
}

func TestTruthTable(t *testing.T) {
	table, support := TruthTable(And(V(2), V(5)))
	if len(support) != 2 || support[0] != 2 || support[1] != 5 {
		t.Fatalf("support = %v", support)
	}
	want := []bool{false, false, false, true}
	for i := range want {
		if table[i] != want[i] {
			t.Fatalf("table = %v want %v", table, want)
		}
	}
}

func TestIteAndImplies(t *testing.T) {
	if !Equivalent(Ite(V(1), V(2), V(3)), Or(And(V(1), V(2)), And(Not(V(1)), V(3)))) {
		t.Error("Ite expansion wrong")
	}
	if !Equivalent(Implies(V(1), V(2)), Or(Not(V(1)), V(2))) {
		t.Error("Implies expansion wrong")
	}
}
