package logic

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse reads an infix Boolean expression in the same syntax String emits:
//
//	expr  := xor
//	xor   := or  { '^' or  }
//	or    := and { '|' and }
//	and   := unary { '&' unary }
//	unary := '!' unary | '(' expr ')' | '0' | '1' | 'x' digits
//
// Whitespace is insignificant. Parse is used by tests and tooling; the hot
// paths construct expressions directly.
func Parse(s string) (*Expr, error) {
	p := &parser{src: s}
	e, err := p.parseXor()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("logic: trailing input at offset %d in %q", p.pos, s)
	}
	return e, nil
}

// MustParse is Parse that panics on error, for tests and constants.
func MustParse(s string) *Expr {
	e, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	src string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *parser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) parseXor() (*Expr, error) {
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	args := []*Expr{e}
	for p.peek() == '^' {
		p.pos++
		next, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		args = append(args, next)
	}
	if len(args) == 1 {
		return e, nil
	}
	return Xor(args...), nil
}

func (p *parser) parseOr() (*Expr, error) {
	e, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	args := []*Expr{e}
	for p.peek() == '|' {
		p.pos++
		next, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		args = append(args, next)
	}
	if len(args) == 1 {
		return e, nil
	}
	return Or(args...), nil
}

func (p *parser) parseAnd() (*Expr, error) {
	e, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	args := []*Expr{e}
	for p.peek() == '&' {
		p.pos++
		next, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		args = append(args, next)
	}
	if len(args) == 1 {
		return e, nil
	}
	return And(args...), nil
}

func (p *parser) parseUnary() (*Expr, error) {
	switch c := p.peek(); c {
	case '!':
		p.pos++
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not(e), nil
	case '(':
		p.pos++
		e, err := p.parseXor()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("logic: expected ')' at offset %d", p.pos)
		}
		p.pos++
		return e, nil
	case '0':
		p.pos++
		return False(), nil
	case '1':
		p.pos++
		return True(), nil
	case 'x':
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
		if p.pos == start {
			return nil, fmt.Errorf("logic: expected variable digits at offset %d", p.pos)
		}
		id, err := strconv.Atoi(p.src[start:p.pos])
		if err != nil || id <= 0 {
			return nil, fmt.Errorf("logic: bad variable id %q", p.src[start:p.pos])
		}
		return V(id), nil
	case 0:
		return nil, fmt.Errorf("logic: unexpected end of input in %q", p.src)
	default:
		return nil, fmt.Errorf("logic: unexpected character %q at offset %d", string(c), p.pos)
	}
}

// Format renders e in the Parse syntax; it is the inverse of Parse up to
// simplification performed by the constructors.
func Format(e *Expr) string { return strings.TrimSpace(e.String()) }
