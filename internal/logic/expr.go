// Package logic implements a symbolic Boolean algebra: an expression AST
// with constructors that fold constants, a simplifier, normal forms, and
// evaluation. It is the stand-in for the SymPy layer the paper uses for
// "Boolean manipulations, such as simplification and complement checking".
//
// Variables are identified by positive integers so expressions can refer
// directly to DIMACS CNF variable numbers.
package logic

import (
	"fmt"
	"sort"
	"strings"
)

// Op enumerates the node kinds of a Boolean expression.
type Op uint8

// Expression node kinds.
const (
	OpConst Op = iota // boolean constant; Val holds the value
	OpVar             // variable reference; Var holds the (positive) id
	OpNot             // negation; Args[0] is the operand
	OpAnd             // n-ary conjunction over Args
	OpOr              // n-ary disjunction over Args
	OpXor             // n-ary exclusive or over Args
)

func (o Op) String() string {
	switch o {
	case OpConst:
		return "const"
	case OpVar:
		return "var"
	case OpNot:
		return "not"
	case OpAnd:
		return "and"
	case OpOr:
		return "or"
	case OpXor:
		return "xor"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Expr is an immutable Boolean expression node. Shared subtrees are allowed;
// all operations treat Expr values as read-only.
type Expr struct {
	Op   Op
	Val  bool    // valid when Op == OpConst
	Var  int     // valid when Op == OpVar; always > 0
	Args []*Expr // operands for OpNot/OpAnd/OpOr/OpXor
}

var (
	trueExpr  = &Expr{Op: OpConst, Val: true}
	falseExpr = &Expr{Op: OpConst, Val: false}
)

// True returns the constant-true expression.
func True() *Expr { return trueExpr }

// False returns the constant-false expression.
func False() *Expr { return falseExpr }

// Const returns the constant expression for v.
func Const(v bool) *Expr {
	if v {
		return trueExpr
	}
	return falseExpr
}

// V returns a variable reference. id must be positive.
func V(id int) *Expr {
	if id <= 0 {
		panic(fmt.Sprintf("logic: variable id must be positive, got %d", id))
	}
	return &Expr{Op: OpVar, Var: id}
}

// Lit returns V(id) when positive is true and ¬V(id) otherwise.
func Lit(id int, positive bool) *Expr {
	if positive {
		return V(id)
	}
	return Not(V(id))
}

// Not returns the negation of e, folding constants and double negation.
func Not(e *Expr) *Expr {
	switch e.Op {
	case OpConst:
		return Const(!e.Val)
	case OpNot:
		return e.Args[0]
	}
	return &Expr{Op: OpNot, Args: []*Expr{e}}
}

// And returns the conjunction of es. Constants are folded, nested Ands are
// flattened, duplicate operands are merged, and complementary operands
// short-circuit to false. And() is true.
func And(es ...*Expr) *Expr { return nary(OpAnd, es) }

// Or returns the disjunction of es with the dual simplifications of And.
// Or() is false.
func Or(es ...*Expr) *Expr { return nary(OpOr, es) }

// Xor returns the exclusive-or of es. Constants fold into a parity flip,
// duplicate operands cancel pairwise, and Xor() is false.
func Xor(es ...*Expr) *Expr {
	flip := false
	var args []*Expr
	var flatten func(list []*Expr)
	flatten = func(list []*Expr) {
		for _, e := range list {
			switch e.Op {
			case OpConst:
				if e.Val {
					flip = !flip
				}
			case OpXor:
				flatten(e.Args)
			case OpNot:
				// ¬a ⊕ rest == a ⊕ rest ⊕ 1
				flip = !flip
				args = append(args, e.Args[0])
			default:
				args = append(args, e)
			}
		}
	}
	flatten(es)
	// Cancel identical pairs: a ⊕ a == 0. Sort by key for stable pairing.
	sort.SliceStable(args, func(i, j int) bool { return Key(args[i]) < Key(args[j]) })
	out := args[:0]
	for i := 0; i < len(args); {
		if i+1 < len(args) && Key(args[i]) == Key(args[i+1]) {
			i += 2
			continue
		}
		out = append(out, args[i])
		i++
	}
	var res *Expr
	switch len(out) {
	case 0:
		res = falseExpr
	case 1:
		res = out[0]
	default:
		res = &Expr{Op: OpXor, Args: append([]*Expr(nil), out...)}
	}
	if flip {
		return Not(res)
	}
	return res
}

// Xnor returns ¬Xor(es...).
func Xnor(es ...*Expr) *Expr { return Not(Xor(es...)) }

// Implies returns a → b.
func Implies(a, b *Expr) *Expr { return Or(Not(a), b) }

// Ite returns the if-then-else (c ∧ t) ∨ (¬c ∧ f).
func Ite(c, t, f *Expr) *Expr { return Or(And(c, t), And(Not(c), f)) }

func nary(op Op, es []*Expr) *Expr {
	unit := op == OpAnd // identity element value: true for AND, false for OR
	var args []*Expr
	seen := map[string]bool{}
	short := false
	var flatten func(list []*Expr)
	flatten = func(list []*Expr) {
		for _, e := range list {
			if short {
				return
			}
			switch {
			case e.Op == OpConst:
				if e.Val != unit {
					short = true // dominating element
				}
			case e.Op == op:
				flatten(e.Args)
			default:
				k := Key(e)
				if seen[k] {
					continue
				}
				if seen[Key(Not(e))] {
					short = true // a ∧ ¬a / a ∨ ¬a
					return
				}
				seen[k] = true
				args = append(args, e)
			}
		}
	}
	flatten(es)
	if short {
		return Const(!unit)
	}
	switch len(args) {
	case 0:
		return Const(unit)
	case 1:
		return args[0]
	}
	return &Expr{Op: op, Args: args}
}

// Eval evaluates e under the assignment function value, which must return
// the value of every variable in the support of e.
func (e *Expr) Eval(value func(id int) bool) bool {
	switch e.Op {
	case OpConst:
		return e.Val
	case OpVar:
		return value(e.Var)
	case OpNot:
		return !e.Args[0].Eval(value)
	case OpAnd:
		for _, a := range e.Args {
			if !a.Eval(value) {
				return false
			}
		}
		return true
	case OpOr:
		for _, a := range e.Args {
			if a.Eval(value) {
				return true
			}
		}
		return false
	case OpXor:
		v := false
		for _, a := range e.Args {
			if a.Eval(value) {
				v = !v
			}
		}
		return v
	}
	panic("logic: invalid op in Eval")
}

// EvalMap evaluates e under a map assignment; absent variables are false.
func (e *Expr) EvalMap(m map[int]bool) bool {
	return e.Eval(func(id int) bool { return m[id] })
}

// Support returns the sorted set of variable ids occurring in e.
func (e *Expr) Support() []int {
	set := map[int]struct{}{}
	e.walk(func(x *Expr) {
		if x.Op == OpVar {
			set[x.Var] = struct{}{}
		}
	})
	ids := make([]int, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

func (e *Expr) walk(fn func(*Expr)) {
	fn(e)
	for _, a := range e.Args {
		a.walk(fn)
	}
}

// Size returns the number of nodes in the expression tree.
func (e *Expr) Size() int {
	n := 1
	for _, a := range e.Args {
		n += a.Size()
	}
	return n
}

// IsConst reports whether e is a boolean constant, returning its value.
func (e *Expr) IsConst() (value, ok bool) {
	if e.Op == OpConst {
		return e.Val, true
	}
	return false, false
}

// Key returns a canonical string key for structural comparison. Two
// expressions with equal keys are structurally identical up to the
// argument ordering normalization performed here.
func Key(e *Expr) string {
	var b strings.Builder
	writeKey(&b, e)
	return b.String()
}

func writeKey(b *strings.Builder, e *Expr) {
	switch e.Op {
	case OpConst:
		if e.Val {
			b.WriteString("T")
		} else {
			b.WriteString("F")
		}
	case OpVar:
		fmt.Fprintf(b, "v%d", e.Var)
	case OpNot:
		b.WriteString("!(")
		writeKey(b, e.Args[0])
		b.WriteString(")")
	default:
		keys := make([]string, len(e.Args))
		for i, a := range e.Args {
			keys[i] = Key(a)
		}
		sort.Strings(keys)
		switch e.Op {
		case OpAnd:
			b.WriteString("&(")
		case OpOr:
			b.WriteString("|(")
		case OpXor:
			b.WriteString("^(")
		}
		b.WriteString(strings.Join(keys, ","))
		b.WriteString(")")
	}
}

// String renders e in a human-readable infix form.
func (e *Expr) String() string {
	switch e.Op {
	case OpConst:
		if e.Val {
			return "1"
		}
		return "0"
	case OpVar:
		return fmt.Sprintf("x%d", e.Var)
	case OpNot:
		return "!" + parens(e.Args[0])
	case OpAnd:
		return joinArgs(e.Args, " & ")
	case OpOr:
		return joinArgs(e.Args, " | ")
	case OpXor:
		return joinArgs(e.Args, " ^ ")
	}
	return "?"
}

func parens(e *Expr) string {
	if e.Op == OpVar || e.Op == OpConst || e.Op == OpNot {
		return e.String()
	}
	return "(" + e.String() + ")"
}

func joinArgs(args []*Expr, sep string) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = parens(a)
	}
	return strings.Join(parts, sep)
}
